"""CFG rules: every ClientConfig section is frozen, validated, round-tripped.

The layered client configuration only works because each section dataclass
is immutable (safe to share, hash, and replace), validates at construction
(a typo raises at the config boundary, not deep in the engine), and rides
the ``from_mapping``/``to_mapping`` round-trip (config files and service
payloads reconstruct the exact object). These rules read the
``_SECTIONS`` registry out of ``repro.api.config`` statically and check
every registered section class — wherever in the tree it is defined —
against that contract, plus the registry's own consistency with
``ClientConfig``'s fields.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.engine import ProjectContext, Rule, Violation

#: The module holding the section registry and the composed config.
CONFIG_MODULE = "repro.api.config"


def _sections_registry(tree: ast.Module) -> Optional[tuple[ast.AST, dict[str, str]]]:
    """The ``_SECTIONS`` dict literal: section name -> section class name."""
    for node in tree.body:
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "_SECTIONS" not in names or not isinstance(value, ast.Dict):
            continue
        mapping: dict[str, str] = {}
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(val, ast.Name):
                mapping[key.value] = val.id
        return node, mapping
    return None


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return decorator
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "dataclass"
        ):
            return decorator
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    return isinstance(decorator, ast.Call) and any(
        kw.arg == "frozen"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in decorator.keywords
    )


def _methods(node: ast.ClassDef) -> set[str]:
    return {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _field_names(node: ast.ClassDef) -> list[str]:
    names: list[str] = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            names.append(item.target.id)
    return names


class ConfigSectionContractRule(Rule):
    """CFG001/CFG002/CFG003 — frozen, validated, registered sections."""

    rule_id = "CFG001"
    name = "frozen-config-sections"
    rationale = (
        "Config sections are shared, hashed, and replace()d; a mutable or "
        "unvalidated section defers failures deep into the engine."
    )

    #: Companion ids this rule emits (one module, three invariants).
    VALIDATION_ID = "CFG002"
    REGISTRY_ID = "CFG003"

    def check_project(self, project: ProjectContext) -> list[Violation]:
        config_ctx = project.find(CONFIG_MODULE)
        if config_ctx is None:
            return []
        found = _sections_registry(config_ctx.tree)
        violations: list[Violation] = []
        if found is None:
            violations.append(
                self.violation(
                    config_ctx,
                    config_ctx.tree,
                    "_SECTIONS registry (name -> section class dict literal) "
                    "not found",
                )
            )
            return violations
        registry_node, registry = found

        for section_name, class_name in registry.items():
            located = project.class_def(class_name)
            if located is None:
                violations.append(
                    Violation(
                        file=config_ctx.rel,
                        line=registry_node.lineno,
                        rule_id=self.REGISTRY_ID,
                        message=(
                            f"section {section_name!r} maps to {class_name}, "
                            f"which is not defined in the linted tree"
                        ),
                    )
                )
                continue
            ctx, node = located
            decorator = _dataclass_decorator(node)
            if decorator is None or not _is_frozen(decorator):
                violations.append(
                    Violation(
                        file=ctx.rel,
                        line=node.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"config section {class_name} must be "
                            f"@dataclass(frozen=True)"
                        ),
                    )
                )
            if "__post_init__" not in _methods(node):
                violations.append(
                    Violation(
                        file=ctx.rel,
                        line=node.lineno,
                        rule_id=self.VALIDATION_ID,
                        message=(
                            f"config section {class_name} has no __post_init__ "
                            f"construction-time validation"
                        ),
                    )
                )

        client = project.class_def("ClientConfig")
        if client is None:
            violations.append(
                Violation(
                    file=config_ctx.rel,
                    line=registry_node.lineno,
                    rule_id=self.REGISTRY_ID,
                    message="ClientConfig class not found in the linted tree",
                )
            )
            return violations
        client_ctx, client_node = client
        fields = [
            name for name in _field_names(client_node) if name in registry
        ]
        if fields != list(registry):
            violations.append(
                Violation(
                    file=client_ctx.rel,
                    line=client_node.lineno,
                    rule_id=self.REGISTRY_ID,
                    message=(
                        f"ClientConfig section fields {fields} do not match "
                        f"the _SECTIONS registry {list(registry)} (same names, "
                        f"same order)"
                    ),
                )
            )
        missing_fields = [
            name for name in registry if name not in _field_names(client_node)
        ]
        for name in missing_fields:
            violations.append(
                Violation(
                    file=client_ctx.rel,
                    line=client_node.lineno,
                    rule_id=self.REGISTRY_ID,
                    message=f"ClientConfig has no field for section {name!r}",
                )
            )
        methods = _methods(client_node)
        for required in ("from_mapping", "to_mapping"):
            if required not in methods:
                violations.append(
                    Violation(
                        file=client_ctx.rel,
                        line=client_node.lineno,
                        rule_id=self.REGISTRY_ID,
                        message=(
                            f"ClientConfig must define {required}() so every "
                            f"section round-trips through mappings"
                        ),
                    )
                )
        return violations

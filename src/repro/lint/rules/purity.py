"""PUR rules: modules shipped into worker processes must stay pickle-pure.

Shard tasks are pure functions of ``(spec, point, worlds)`` — that purity
is what makes retries, pool healing, inline rescue, and round merging
bit-identical. It survives only if the modules a task pickle drags into a
worker (``repro.serve.worker``, ``repro.serve.faults``, and the reader
side of ``repro.serve.transport``) carry no hidden coordinator state:

* no mutable module-level globals (a dict that differs between the
  coordinator and a freshly spawned worker silently changes decisions) —
  deliberate per-process caches are allowed behind a pragma whose
  justification states why cross-process divergence is safe;
* task payload dataclasses must be ``frozen=True`` (a payload mutated en
  route breaks replay identity and hashability);
* no imports of coordinator-only machinery (service, scheduler,
  dispatcher, executors, result cache, observability, the api layer) —
  those hold live engines, pools, and tracers that must never be pickled
  toward a worker.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, Violation

#: Modules whose code executes inside worker processes.
WORKER_MODULES: tuple[str, ...] = (
    "repro.serve.worker",
    "repro.serve.faults",
    "repro.serve.transport",
)

#: Coordinator-only modules a worker-shipped module must never import:
#: they hold live pools, engines, caches, and tracers.
COORDINATOR_MODULES: tuple[str, ...] = (
    "repro.serve.service",
    "repro.serve.scheduler",
    "repro.serve.resilience",
    "repro.serve.executors",
    "repro.serve.cache",
    "repro.api",
    "repro.obs",
    "repro.cli",
)

#: Call targets producing mutable containers at module scope.
_MUTABLE_FACTORIES: frozenset[str] = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _in_worker_scope(ctx: FileContext) -> bool:
    return ctx.module_is(*WORKER_MODULES)


class MutableModuleStateRule(Rule):
    """PUR001 — mutable module-level state in a worker-shipped module."""

    rule_id = "PUR001"
    name = "worker-module-purity"
    rationale = (
        "Module globals diverge between coordinator and workers; any "
        "mutable module state in a worker-shipped module must be a "
        "documented per-process cache (pragma) or per-task state."
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if not _in_worker_scope(ctx):
            return []
        violations: list[Violation] = []
        for node in ctx.tree.body:
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_value(value):
                continue
            plain = [t.id for t in targets if isinstance(t, ast.Name)]
            # Dunder metadata (__all__ and friends) is interpreter protocol,
            # not shared program state.
            if plain and all(n.startswith("__") and n.endswith("__") for n in plain):
                continue
            names = ", ".join(plain) or "<target>"
            violations.append(
                self.violation(
                    ctx,
                    node,
                    f"mutable module-level state {names!r} in worker-shipped "
                    f"module {ctx.module}",
                )
            )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"module-global rebinding of {', '.join(node.names)!r} "
                        f"in worker-shipped module {ctx.module}",
                    )
                )
        return violations


class FrozenPayloadRule(Rule):
    """PUR002 — task payload dataclasses must be frozen (pickle-safe)."""

    rule_id = "PUR002"
    name = "frozen-task-payloads"
    rationale = (
        "Payloads crossing the process boundary must be immutable: a "
        "mutated payload breaks replay identity, content hashing, and "
        "the retry ladder's bit-identity guarantee."
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if not _in_worker_scope(ctx):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"dataclass {node.name!r} in worker-shipped module "
                            f"must be @dataclass(frozen=True)",
                        )
                    )
                elif (
                    isinstance(decorator, ast.Call)
                    and isinstance(decorator.func, ast.Name)
                    and decorator.func.id == "dataclass"
                ):
                    frozen = any(
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in decorator.keywords
                    )
                    if not frozen:
                        violations.append(
                            self.violation(
                                ctx,
                                node,
                                f"dataclass {node.name!r} in worker-shipped "
                                f"module must be @dataclass(frozen=True)",
                            )
                        )
        return violations


class CoordinatorImportRule(Rule):
    """PUR003 — worker-shipped modules must not import coordinator-only code."""

    rule_id = "PUR003"
    name = "no-coordinator-imports"
    rationale = (
        "Service, scheduler, dispatcher, executors, cache, obs, and api "
        "hold live pools/engines/tracers; importing them from a "
        "worker-shipped module drags coordinator state toward the pickle "
        "boundary."
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if not _in_worker_scope(ctx):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                banned = next(
                    (
                        target
                        for target in COORDINATOR_MODULES
                        if module == target or module.startswith(target + ".")
                    ),
                    None,
                )
                if banned is not None:
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"worker-shipped module {ctx.module} imports "
                            f"coordinator-only module {module}",
                        )
                    )
        return violations

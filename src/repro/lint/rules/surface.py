"""SRF rules: the public surface matches its committed snapshot, statically.

``tests/api/test_surface.py`` pins ``repro.api.__all__`` (and
``repro.serve.__all__``) to explicit snapshot tuples at *runtime*; this
rule enforces the same contract without importing anything, so an export
drift fails ``repro lint`` even before the test suite runs. It parses the
snapshot tuples out of the fixture and the literal ``__all__`` lists out of
the package ``__init__`` files, and additionally requires the two snapshot
-pinned ``__all__`` lists to be sorted and duplicate-free (order is part of
the published surface). The top-level ``repro/__init__.py`` builds its
``__all__`` dynamically (legacy spellings are appended), so it is checked
as a superset: every ``repro.api`` export must be re-exported at top level.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional

from repro.lint.engine import ProjectContext, Rule, Violation

#: The runtime fixture the static check mirrors, relative to the repo root.
SNAPSHOT_FIXTURE = Path("tests") / "api" / "test_surface.py"

#: Snapshot variable -> the module whose ``__all__`` it pins.
SNAPSHOT_MODULES: dict[str, str] = {
    "SURFACE_SNAPSHOT": "repro.api",
    "SERVE_SURFACE_SNAPSHOT": "repro.serve",
}

#: The module whose ``__all__`` must be a superset of SURFACE_SNAPSHOT.
TOP_LEVEL_MODULE = "repro"


def _string_elements(node: ast.AST) -> Optional[list[str]]:
    """The literal string elements of a list/tuple display (Starred and
    non-string elements are skipped, reported as None only when the node
    is not a display at all)."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    return [
        element.value
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


def _assigned_literal(tree: ast.Module, name: str) -> Optional[ast.AST]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


class PublicSurfaceRule(Rule):
    """SRF001/SRF002 — ``__all__`` vs snapshot, sortedness, duplicates."""

    rule_id = "SRF001"
    name = "public-surface-snapshot"
    rationale = (
        "The exported surface is an API decision; changing __all__ must "
        "be deliberate (update the snapshot in the same commit)."
    )

    ORDER_ID = "SRF002"

    def check_project(self, project: ProjectContext) -> list[Violation]:
        violations: list[Violation] = []
        snapshots = self._load_snapshots(project)
        for ctx in project.files:
            if ctx.module not in set(SNAPSHOT_MODULES.values()) | {TOP_LEVEL_MODULE}:
                continue
            literal = _assigned_literal(ctx.tree, "__all__")
            if literal is None:
                violations.append(
                    self.violation(
                        ctx, ctx.tree, f"{ctx.module} defines no literal __all__"
                    )
                )
                continue
            names = _string_elements(literal)
            if names is None:
                violations.append(
                    self.violation(
                        ctx,
                        literal,
                        f"{ctx.module}.__all__ is not a list/tuple literal",
                    )
                )
                continue
            if ctx.module == TOP_LEVEL_MODULE:
                violations.extend(self._check_top_level(ctx, literal, names, snapshots))
            else:
                violations.extend(
                    self._check_pinned(ctx, literal, names, snapshots)
                )
        return violations

    # -- per-module checks ---------------------------------------------------

    def _check_pinned(self, ctx, literal, names, snapshots) -> list[Violation]:
        violations: list[Violation] = []
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            violations.append(
                Violation(
                    file=ctx.rel,
                    line=literal.lineno,
                    rule_id=self.ORDER_ID,
                    message=f"{ctx.module}.__all__ has duplicates: {duplicates}",
                )
            )
        if names != sorted(names):
            violations.append(
                Violation(
                    file=ctx.rel,
                    line=literal.lineno,
                    rule_id=self.ORDER_ID,
                    message=f"{ctx.module}.__all__ is not sorted",
                )
            )
        snapshot_name = next(
            (key for key, mod in SNAPSHOT_MODULES.items() if mod == ctx.module), None
        )
        snapshot = snapshots.get(snapshot_name) if snapshot_name else None
        if snapshot is not None:
            if tuple(sorted(names)) != tuple(sorted(snapshot)):
                missing = sorted(set(snapshot) - set(names))
                extra = sorted(set(names) - set(snapshot))
                violations.append(
                    self.violation(
                        ctx,
                        literal,
                        f"{ctx.module}.__all__ does not match {snapshot_name} "
                        f"(missing: {missing or '[]'}, unexpected: "
                        f"{extra or '[]'})",
                    )
                )
        return violations

    def _check_top_level(self, ctx, literal, names, snapshots) -> list[Violation]:
        snapshot = snapshots.get("SURFACE_SNAPSHOT")
        if snapshot is None:
            return []
        missing = sorted(set(snapshot) - set(names))
        if missing:
            return [
                self.violation(
                    ctx,
                    literal,
                    f"repro.__all__ must re-export the full repro.api surface; "
                    f"missing: {missing}",
                )
            ]
        return []

    # -- snapshot fixture ----------------------------------------------------

    def _load_snapshots(
        self, project: ProjectContext
    ) -> dict[str, tuple[str, ...]]:
        if project.repo_root is None:
            return {}
        fixture = project.repo_root / SNAPSHOT_FIXTURE
        if not fixture.exists():
            return {}
        tree = ast.parse(fixture.read_text(encoding="utf-8"))
        snapshots: dict[str, tuple[str, ...]] = {}
        for name in SNAPSHOT_MODULES:
            literal = _assigned_literal(tree, name)
            if literal is not None:
                names = _string_elements(literal)
                if names is not None:
                    snapshots[name] = tuple(names)
        return snapshots

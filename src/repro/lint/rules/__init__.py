"""The shipped rule set, one module per contract family.

=======  ==============================  =============================================
family   module                          contract
=======  ==============================  =============================================
DET      :mod:`.determinism`             no wall clock / unseeded RNG outside repro.obs
PUR      :mod:`.purity`                  worker-shipped modules stay pickle-pure
STAT     :mod:`.stats_surface`           counter JSON never derives from timing
CFG      :mod:`.config_sections`         config sections frozen + validated + registered
ERR      :mod:`.taxonomy`                serve raises speak the errors.py taxonomy
SRF      :mod:`.surface`                 __all__ matches the committed surface snapshot
=======  ==============================  =============================================
"""

from __future__ import annotations

from repro.lint.engine import Rule
from repro.lint.rules.config_sections import ConfigSectionContractRule
from repro.lint.rules.determinism import UnseededRandomRule, WallClockRule
from repro.lint.rules.purity import (
    CoordinatorImportRule,
    FrozenPayloadRule,
    MutableModuleStateRule,
)
from repro.lint.rules.stats_surface import StableCounterSurfaceRule
from repro.lint.rules.surface import PublicSurfaceRule
from repro.lint.rules.taxonomy import ServeTaxonomyRule


def default_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, in catalog order."""
    return [
        WallClockRule(),
        UnseededRandomRule(),
        MutableModuleStateRule(),
        FrozenPayloadRule(),
        CoordinatorImportRule(),
        StableCounterSurfaceRule(),
        ConfigSectionContractRule(),
        ServeTaxonomyRule(),
        PublicSurfaceRule(),
    ]


#: Rule id -> (name, rationale) for ``repro lint --list-rules`` and docs.
#: Composite rules contribute every id they emit.
def rule_catalog() -> list[tuple[str, str, str]]:
    catalog: list[tuple[str, str, str]] = []
    for rule in default_rules():
        catalog.append((rule.rule_id, rule.name, rule.rationale))
        for extra_attr in ("VALIDATION_ID", "REGISTRY_ID", "BUILTIN_ID", "ORDER_ID"):
            extra = getattr(rule, extra_attr, None)
            if extra:
                catalog.append((extra, rule.name, rule.rationale))
    return sorted(catalog)


__all__ = [
    "ConfigSectionContractRule",
    "CoordinatorImportRule",
    "FrozenPayloadRule",
    "MutableModuleStateRule",
    "PublicSurfaceRule",
    "ServeTaxonomyRule",
    "StableCounterSurfaceRule",
    "UnseededRandomRule",
    "WallClockRule",
    "default_rules",
    "rule_catalog",
]

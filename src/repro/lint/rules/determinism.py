"""DET rules: no wall clock, no unseeded randomness, outside observability.

The repository's hardest contract is bit-identical results across
executors, shard geometries, rounds, and chaos plans — which holds only if
no scheduling or stopping decision ever reads a clock and every random
draw flows from the fixed seed sequence. ``repro.obs`` is the one module
*allowed* to read clocks (it exists to measure), so it is exempt wholesale;
everywhere else a clock read or an unseeded generator is a violation that
must either be fixed or carry an inline pragma whose justification explains
why the value can never reach a decision or a counter surface.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, Violation

#: Modules exempt from the determinism rules (the observability plane is
#: the designated home of wall-clock measurement).
EXEMPT_PACKAGES: tuple[str, ...] = ("repro.obs",)

#: ``time.<fn>`` calls that read a clock. ``time.sleep`` is deliberately
#: not here: sleeping delays work but never *feeds a value* anywhere.
CLOCK_TIME_FUNCTIONS: frozenset[str] = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.<fn>`` / ``datetime.datetime.<fn>`` constructors that read
#: the current date or time.
CLOCK_DATETIME_FUNCTIONS: frozenset[str] = frozenset(
    {"now", "utcnow", "today", "fromtimestamp"}
)

#: ``random.<fn>`` module-level functions drawing from the shared global
#: (and therefore unseeded, order-dependent) generator.
GLOBAL_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "seed",
        "getrandbits",
    }
)

#: Legacy ``numpy.random.<fn>`` global-state functions.
GLOBAL_NUMPY_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "poisson",
        "exponential",
        "seed",
    }
)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    """DET001 — wall-clock reads outside the observability plane."""

    rule_id = "DET001"
    name = "no-wall-clock"
    rationale = (
        "Scheduling and stopping decisions must be pure functions of "
        "statistics; a clock read anywhere else needs a pragma explaining "
        "why its value can never reach a decision or a byte-stable counter."
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if ctx.module_under(*EXEMPT_PACKAGES):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] == "time" and parts[1] in CLOCK_TIME_FUNCTIONS:
                violations.append(
                    self.violation(ctx, node, f"wall-clock read time.{parts[1]}()")
                )
            elif (
                len(parts) >= 2
                and parts[-1] in CLOCK_DATETIME_FUNCTIONS
                and "datetime" in parts[:-1]
            ):
                violations.append(
                    self.violation(ctx, node, f"wall-clock read {dotted}()")
                )
        return violations


class UnseededRandomRule(Rule):
    """DET002 — randomness not derived from the fixed seed sequence."""

    rule_id = "DET002"
    name = "no-unseeded-random"
    rationale = (
        "Every draw must flow from the fixed world-seed sequence "
        "(repro.vg.seeds); global or unseeded generators make results "
        "depend on import order and interleaving."
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if ctx.module_under(*EXEMPT_PACKAGES):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            parts = dotted.split(".")
            unseeded = not node.args and not node.keywords
            if len(parts) == 2 and parts[0] == "random":
                if parts[1] in GLOBAL_RANDOM_FUNCTIONS:
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"global-generator call random.{parts[1]}()",
                        )
                    )
                elif parts[1] == "Random" and unseeded:
                    violations.append(
                        self.violation(ctx, node, "unseeded random.Random()")
                    )
            elif parts[-1] == "default_rng" and "random" in parts[:-1] and unseeded:
                violations.append(
                    self.violation(ctx, node, f"unseeded {dotted}()")
                )
            elif (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[-1] in GLOBAL_NUMPY_RANDOM_FUNCTIONS
            ):
                violations.append(
                    self.violation(
                        ctx, node, f"legacy global numpy RNG call {dotted}()"
                    )
                )
        return violations

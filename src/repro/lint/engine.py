"""The repro-lint rule engine: AST walking, pragmas, baseline, reporting.

The contracts this repository runs on — bit-identical results across
executors, no wall clock in scheduling or stopping decisions, byte-stable
counter JSON, pickle-pure worker tasks — are guarded dynamically by the
parity and chaos suites, which catch violations late and only on exercised
paths. This package checks them *statically*, on every commit, the way an
integrity constraint is checked independently of any particular query run.

Model:

* a **rule** (:class:`Rule`) inspects parsed files and yields
  :class:`Violation` records; file-scoped rules see one
  :class:`FileContext` at a time, project-scoped rules see the whole
  :class:`ProjectContext` (cross-file contracts: the config-section
  registry, the public-surface snapshot);
* a **pragma** — ``# repro-lint: disable=RULE[,RULE...]`` (or
  ``disable=all``) on the flagged line, or anywhere in the contiguous
  block of standalone comment lines directly above it — suppresses a
  violation *in place*, with the (possibly multi-line) justification
  living next to the exempted code;
* a **baseline** file (JSON) grandfathers known violations by
  ``(file, rule, message)`` fingerprint — line numbers are deliberately
  not part of the fingerprint, so unrelated edits never churn it. New
  violations fail; baselined ones are reported as suppressed; baseline
  entries that no longer match anything are reported as stale.

The engine never imports the code it checks — everything is
:mod:`ast` over source text, so linting cannot execute side effects and
works on trees that do not import (half-written code, gated deps).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Pragma syntax: ``# repro-lint: disable=DET001,PUR001`` or ``disable=all``.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Testing hook: a fixture snippet can declare the module it impersonates
#: (``# repro-lint-fixture: module=repro.serve.worker``) so rule
#: applicability can be exercised from a temp directory.
_FIXTURE_RE = re.compile(r"#\s*repro-lint-fixture:\s*module=([A-Za-z0-9_.]+)")

#: Baseline schema version; bumped only on incompatible format changes.
BASELINE_VERSION = 1

#: Default baseline filename, looked up from the repo root (the first
#: ancestor of the linted path that carries one, or none at all).
BASELINE_FILENAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one source location."""

    file: str
    line: int
    rule_id: str
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: deliberately line-number-free."""
        return (self.file, self.rule_id, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """One parsed source file, as rules see it."""

    path: Path
    #: Path relative to the lint invocation root (posix, for stable output).
    rel: str
    #: Dotted module name (``repro.serve.worker``), inferred from the
    #: ``__init__.py`` chain or overridden by a fixture pragma.
    module: str
    tree: ast.Module
    lines: list[str]

    def module_is(self, *names: str) -> bool:
        """Does this file's module match any given dotted name exactly?"""
        return self.module in names

    def module_under(self, *packages: str) -> bool:
        """Is this file's module inside any of the given packages?"""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


@dataclass
class ProjectContext:
    """Every parsed file of one lint run, for cross-file rules."""

    root: Path
    files: list[FileContext]
    #: Repo root (first ancestor holding ``tests/``), when found — the
    #: surface rule reads its snapshot fixture from here.
    repo_root: Optional[Path] = None

    def find(self, module: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None

    def class_def(self, name: str) -> Optional[tuple[FileContext, ast.ClassDef]]:
        """The first top-level class of this name anywhere in the run."""
        for ctx in self.files:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return ctx, node
        return None


class Rule:
    """Base class: one invariant, one stable id, one catalog row."""

    rule_id: str = ""
    name: str = ""
    #: One-line rationale for the README catalog and ``--list-rules``.
    rationale: str = ""

    def check_file(self, ctx: FileContext) -> list[Violation]:
        return []

    def check_project(self, project: ProjectContext) -> list[Violation]:
        return []

    # -- helpers shared by concrete rules -----------------------------------

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            file=ctx.rel,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
        )


# -- source discovery and parsing ---------------------------------------------


def _infer_module(path: Path) -> str:
    """Dotted module name from the ``__init__.py`` chain above ``path``."""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def parse_file(path: Path, rel: Optional[str] = None) -> FileContext:
    """Parse one source file into the context rules consume.

    Raises :class:`SyntaxError` for unparseable source — a lint run should
    fail loudly on a file the interpreter itself would reject.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    module = _infer_module(path)
    for line in lines[:5]:
        fixture = _FIXTURE_RE.search(line)
        if fixture:
            module = fixture.group(1)
            break
    return FileContext(
        path=path,
        rel=rel if rel is not None else path.as_posix(),
        module=module,
        tree=tree,
        lines=lines,
    )


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _find_repo_root(start: Path) -> Optional[Path]:
    """First ancestor that looks like the repository root (has ``tests/``)."""
    current = start if start.is_dir() else start.parent
    for _ in range(8):
        if (current / "tests").is_dir() or (current / ".git").exists():
            return current
        parent = current.parent
        if parent == current:
            return None
        current = parent
    return None


# -- pragmas ------------------------------------------------------------------


def disabled_rules(lines: list[str], line: int) -> set[str]:
    """Rule ids suppressed at 1-based ``line`` via inline pragmas.

    A pragma counts if it sits on the flagged line itself, or anywhere in
    the contiguous block of standalone comment lines directly above it —
    so a pragma can carry a multi-line justification.
    """
    disabled: set[str] = set()
    candidates = []
    if 1 <= line <= len(lines):
        candidates.append(lines[line - 1])
    probe = line - 1
    while probe >= 1 and lines[probe - 1].lstrip().startswith("#"):
        candidates.append(lines[probe - 1])
        probe -= 1
    for text in candidates:
        match = _PRAGMA_RE.search(text)
        if match:
            raw = match.group(1)
            if raw == "all":
                disabled.add("all")
            else:
                disabled.update(part.strip() for part in raw.split(",") if part.strip())
    return disabled


# -- baseline -----------------------------------------------------------------


@dataclass
class Baseline:
    """Grandfathered violations, keyed by line-free fingerprint."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})"
            )
        entries = {
            (entry["file"], entry["rule"], entry["message"])
            for entry in payload.get("entries", [])
        }
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        return cls(entries={v.fingerprint() for v in violations})

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"file": file, "rule": rule, "message": message}
                for file, rule, message in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def contains(self, violation: Violation) -> bool:
        return violation.fingerprint() in self.entries

    def stale_entries(
        self, violations: Iterable[Violation]
    ) -> list[tuple[str, str, str]]:
        """Baseline entries matching nothing anymore — fixed, remove them."""
        seen = {v.fingerprint() for v in violations}
        return sorted(self.entries - seen)


# -- the engine ---------------------------------------------------------------


@dataclass
class LintResult:
    """Everything one run produced, before exit-code policy is applied."""

    violations: list[Violation]
    suppressed: list[Violation]
    baselined: list[Violation]
    stale_baseline: list[tuple[str, str, str]]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        for file, rule, message in self.stale_baseline:
            lines.append(
                f"note: stale baseline entry (already fixed, remove it): "
                f"{file}: {rule} {message}"
            )
        lines.append(
            f"{len(self.violations)} violation(s) in {self.files_checked} "
            f"file(s) ({len(self.suppressed)} pragma-suppressed, "
            f"{len(self.baselined)} baselined)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "violations": [
                {
                    "file": v.file,
                    "line": v.line,
                    "rule": v.rule_id,
                    "message": v.message,
                }
                for v in self.violations
            ],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": [list(entry) for entry in self.stale_baseline],
            "files_checked": self.files_checked,
        }


class LintEngine:
    """Run a rule set over a source tree and apply pragma/baseline policy."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        if rules is None:
            from repro.lint.rules import default_rules

            rules = default_rules()
        ids = [rule.rule_id for rule in rules]
        duplicates = {rule_id for rule_id in ids if ids.count(rule_id) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule id(s): {sorted(duplicates)}")
        self.rules = list(rules)
        self.baseline = baseline or Baseline()

    def run(self, paths: Sequence[Path], root: Optional[Path] = None) -> LintResult:
        """Lint the given files/directories; policy-applied result."""
        targets = [Path(p) for p in paths]
        files = discover_files(targets)
        base = root or Path.cwd()
        contexts: list[FileContext] = []
        for file_path in files:
            try:
                rel = file_path.relative_to(base).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            contexts.append(parse_file(file_path, rel=rel))
        anchor = targets[0] if targets else base
        project = ProjectContext(
            root=anchor, files=contexts, repo_root=_find_repo_root(anchor.resolve())
        )

        raw: list[Violation] = []
        for ctx in contexts:
            for rule in self.rules:
                raw.extend(rule.check_file(ctx))
        for rule in self.rules:
            raw.extend(rule.check_project(project))
        raw.sort(key=lambda v: (v.file, v.line, v.rule_id))

        by_rel = {ctx.rel: ctx for ctx in contexts}
        active: list[Violation] = []
        suppressed: list[Violation] = []
        baselined: list[Violation] = []
        for violation in raw:
            ctx = by_rel.get(violation.file)
            disabled = (
                disabled_rules(ctx.lines, violation.line) if ctx is not None else set()
            )
            if "all" in disabled or violation.rule_id in disabled:
                suppressed.append(violation)
            elif self.baseline.contains(violation):
                baselined.append(violation)
            else:
                active.append(violation)
        return LintResult(
            violations=active,
            suppressed=suppressed,
            baselined=baselined,
            stale_baseline=self.baseline.stale_entries(raw),
            files_checked=len(contexts),
        )


def load_default_baseline(anchor: Path) -> Optional[Baseline]:
    """The committed baseline next to the repo root above ``anchor``, if any."""
    root = _find_repo_root(anchor.resolve())
    if root is None:
        return None
    candidate = root / BASELINE_FILENAME
    if candidate.exists():
        return Baseline.load(candidate)
    return None

"""``repro.lint`` — the repository's own static-analysis pass.

An AST-based invariant linter enforcing, on every commit, the contracts
the test suite otherwise guards only dynamically: determinism (no wall
clock or unseeded randomness outside :mod:`repro.obs`), worker purity
(modules shipped to workers carry no hidden mutable state), the
byte-stable counter surface (timing never leaks into
``StatsReport.to_json``/``ServiceStats.as_dict``), frozen validated
config sections, the serve-layer error taxonomy, and the public
``__all__`` surface snapshot.

Run it as ``repro lint [paths...]`` (the CLI subcommand) or
programmatically::

    from pathlib import Path
    from repro.lint import LintEngine

    result = LintEngine().run([Path("src/repro")])
    print(result.render())
    assert result.ok

Suppression is always *in place*: a ``# repro-lint: disable=RULE`` pragma
(same line or the comment line above) with a short justification, or a
committed baseline file for grandfathered debt (see
:mod:`repro.lint.engine`).
"""

from repro.lint.engine import (
    Baseline,
    FileContext,
    LintEngine,
    LintResult,
    ProjectContext,
    Rule,
    Violation,
    load_default_baseline,
    parse_file,
)
from repro.lint.rules import default_rules, rule_catalog

__all__ = [
    "Baseline",
    "FileContext",
    "LintEngine",
    "LintResult",
    "ProjectContext",
    "Rule",
    "Violation",
    "default_rules",
    "load_default_baseline",
    "parse_file",
    "rule_catalog",
]

"""The capacity forecast model (paper §3.1).

*"The model accepts a set of hardware purchase dates, constructs
(stochastically) a series of events that modify the number of cores
available during a given week, and tracks the sum of all changes over the
course of the entire year."*

Weekly available CPU cores over one year:

* start from ``initial_capacity``;
* each of the two purchases delivers ``purchase_cores`` cores at week
  ``purchase_i + lag_i`` where ``lag_i`` is a random deployment lag — the
  paper's "nondeterministic date when new hardware comes online";
* every week, each failure class destroys a random number of cores
  (see :mod:`repro.models.failures`);
* capacity is the running sum of all changes.

Fingerprint behaviour across purchase-date changes (verified in tests):
failure histories are seed-determined and arg-independent, so weeks before
the earliest arrival and after the latest arrival map by **identity** /
**shift**, while weeks inside the arrival window are seed-dependently
different and stay **unmapped** — the window is exactly what must be
re-simulated when a slider moves.

:class:`MaintenanceWindowCapacityModel` is the stepped (Markov-chain)
variant used to demonstrate §2's Markovian shortcut estimators: failures
occur only inside scheduled maintenance windows, so the chain is
deterministic elsewhere and those regions can be skipped.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import VGFunctionError
from repro.models.failures import FailureClass, default_failure_classes, total_weekly_losses
from repro.vg.base import SteppedVGFunction, VGFunction

WEEKS_PER_YEAR = 53


class CapacityModel(VGFunction):
    """Weekly available cores under a two-purchase schedule.

    SQL forms: ``CapacityModel(seed, t, purchase1, purchase2)`` and
    ``CapacityModelT(seed, purchase1, purchase2)``. With
    ``with_initial_arg=True`` a trailing ``initial`` argument overrides the
    starting capacity (used for the "different initial capacity" what-ifs of
    §3.3 — a pure **shift** in fingerprint terms).
    """

    arg_names = ("purchase1", "purchase2")

    def __init__(
        self,
        name: str = "CapacityModel",
        n_weeks: int = WEEKS_PER_YEAR,
        initial_capacity: float = 7000.0,
        purchase_cores: float = 1800.0,
        lag_choices: tuple[int, ...] = (2, 3, 4),
        lag_weights: tuple[float, ...] = (0.3, 0.5, 0.2),
        failure_classes: tuple[FailureClass, ...] | None = None,
        with_initial_arg: bool = False,
    ) -> None:
        if n_weeks < 1:
            raise VGFunctionError(f"n_weeks must be >= 1, got {n_weeks}")
        if purchase_cores < 0:
            raise VGFunctionError(f"purchase_cores must be >= 0, got {purchase_cores}")
        if len(lag_choices) != len(lag_weights) or not lag_choices:
            raise VGFunctionError("lag_choices and lag_weights must be non-empty and equal length")
        weights = np.asarray(lag_weights, dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise VGFunctionError("lag_weights must be non-negative and sum > 0")
        self.name = name
        self.n_components = int(n_weeks)
        self.arg_names = (
            ("purchase1", "purchase2", "initial")
            if with_initial_arg
            else ("purchase1", "purchase2")
        )
        self.initial_capacity = float(initial_capacity)
        self.purchase_cores = float(purchase_cores)
        self.lag_choices = tuple(int(c) for c in lag_choices)
        self.lag_weights = weights / weights.sum()
        self.failure_classes = (
            default_failure_classes() if failure_classes is None else tuple(failure_classes)
        )
        self.with_initial_arg = bool(with_initial_arg)
        super().__init__()

    # -- randomness (arg-independent draw order) -----------------------------------

    def _world_events(self, seed: int) -> tuple[np.ndarray, np.ndarray]:
        """Deployment lags (one per purchase) and weekly failure losses.

        Draw order is fixed and argument-independent, so one seed yields one
        failure history and one pair of lags under *any* purchase schedule.
        """
        rng = self.rng(seed, ())
        lags = rng.choice(self.lag_choices, size=2, p=self.lag_weights)
        losses = total_weekly_losses(self.failure_classes, rng, self.n_components)
        return lags.astype(int), losses

    def _split_args(self, args: tuple[Any, ...]) -> tuple[int, int, float]:
        if self.with_initial_arg:
            purchase1, purchase2, initial = args
        else:
            purchase1, purchase2 = args
            initial = self.initial_capacity
        return int(purchase1), int(purchase2), float(initial)

    # -- generation --------------------------------------------------------------

    def generate(self, seed: int, args: tuple[Any, ...]) -> np.ndarray:
        purchase1, purchase2, initial = self._split_args(args)
        lags, losses = self._world_events(seed)
        weeks = np.arange(self.n_components)
        arrivals = np.zeros(self.n_components, dtype=float)
        for purchase, lag in zip((purchase1, purchase2), lags):
            arrival_week = purchase + int(lag)
            if arrival_week < self.n_components:
                arrivals += np.where(weeks >= arrival_week, self.purchase_cores, 0.0)
        capacity = initial + arrivals - np.cumsum(losses)
        return np.clip(capacity, 0.0, None)

    def generate_partial(
        self, seed: int, args: tuple[Any, ...], components: np.ndarray
    ) -> np.ndarray:
        """Partial generation via the same cheap vectorized arithmetic.

        The failure history must be drawn in full to keep streams aligned,
        but that is one vectorized draw; per-component cost is dominated by
        the event bookkeeping, which indexes directly.
        """
        return self.generate(seed, args)[components]

    # -- analytics (used by tests) -----------------------------------------------

    def expected_weekly_loss(self) -> float:
        return sum(fc.expected_weekly_loss() for fc in self.failure_classes)

    def expected_capacity(self, week: int, purchase1: int, purchase2: int) -> float:
        """Analytic E[capacity] ignoring severity truncation and the >=0 clip.

        The lag distribution is marginalized exactly: each purchase
        contributes ``purchase_cores`` weighted by P(arrival <= week).
        """
        capacity = self.initial_capacity - (week + 1) * self.expected_weekly_loss()
        for purchase in (purchase1, purchase2):
            arrived_probability = sum(
                weight
                for lag, weight in zip(self.lag_choices, self.lag_weights)
                if week >= purchase + lag
            )
            capacity += self.purchase_cores * float(arrived_probability)
        return capacity


class MaintenanceWindowCapacityModel(SteppedVGFunction):
    """Stepped capacity chain with failures only in maintenance windows.

    Outside the scheduled windows the chain is deterministic
    (``state += weekly_delivery``), so Markov analysis finds long
    predictable regions and shortcut estimators can skip them (experiment
    C6). Inside a window, a random number of cores is lost per step.

    RNG discipline: exactly one Poisson and one Gaussian draw per step —
    inside or outside a window — keeping streams aligned across args.
    """

    arg_names = ("window_phase",)

    def __init__(
        self,
        name: str = "MaintenanceCapacityModel",
        n_weeks: int = WEEKS_PER_YEAR,
        initial_capacity: float = 6500.0,
        weekly_delivery: float = 35.0,
        window_every: int = 13,
        window_width: int = 2,
        window_loss_rate: float = 4.0,
        window_loss_mean: float = 60.0,
        window_loss_sigma: float = 15.0,
    ) -> None:
        if window_every < 1:
            raise VGFunctionError(f"window_every must be >= 1, got {window_every}")
        if window_width < 1 or window_width > window_every:
            raise VGFunctionError(
                f"window_width must be in [1, {window_every}], got {window_width}"
            )
        self.name = name
        self.n_components = int(n_weeks)
        self.initial_capacity = float(initial_capacity)
        self.weekly_delivery = float(weekly_delivery)
        self.window_every = int(window_every)
        self.window_width = int(window_width)
        self.window_loss_rate = float(window_loss_rate)
        self.window_loss_mean = float(window_loss_mean)
        self.window_loss_sigma = float(window_loss_sigma)
        super().__init__()

    def in_window(self, t: int, phase: int) -> bool:
        return ((t - phase) % self.window_every) < self.window_width

    def initial_state(self, rng: np.random.Generator, args: tuple[Any, ...]) -> float:
        return self.initial_capacity

    def step(
        self, state: float, t: int, rng: np.random.Generator, args: tuple[Any, ...]
    ) -> float:
        (phase,) = args
        count = rng.poisson(self.window_loss_rate)
        severity = max(rng.normal(self.window_loss_mean, self.window_loss_sigma), 0.0)
        loss = count * severity if self.in_window(t, int(phase)) else 0.0
        return max(state + self.weekly_delivery - loss, 0.0)

"""The demo business models of paper §3.1 and canned scenarios."""

from repro.models.capacity import (
    CapacityModel,
    MaintenanceWindowCapacityModel,
    WEEKS_PER_YEAR,
)
from repro.models.demand import DemandModel
from repro.models.failures import (
    FailureClass,
    default_failure_classes,
    total_weekly_losses,
)
from repro.models.scenario_library import (
    FIGURE2_DSL,
    build_demo_library,
    build_growth_scenario,
    build_maintenance_scenario,
    build_risk_vs_cost,
)

__all__ = [
    "DemandModel",
    "CapacityModel",
    "MaintenanceWindowCapacityModel",
    "WEEKS_PER_YEAR",
    "FailureClass",
    "default_failure_classes",
    "total_weekly_losses",
    "FIGURE2_DSL",
    "build_demo_library",
    "build_risk_vs_cost",
    "build_growth_scenario",
    "build_maintenance_scenario",
]

"""Canned scenarios, including the paper's Figure 2 business scenario.

:func:`build_risk_vs_cost` constructs the demo's risk-vs-cost-of-ownership
scenario programmatically; :data:`FIGURE2_DSL` is the verbatim Figure 2 text
for the DSL parser (both produce equivalent scenarios — a test asserts it).
"""

from __future__ import annotations

from repro.core.parameters import Parameter, ParameterSpace
from repro.core.scenario import (
    DerivedOutput,
    GraphSeries,
    GraphSpec,
    OptimizeObjective,
    OptimizeSpec,
    Scenario,
    VGOutput,
)
from repro.models.capacity import CapacityModel, MaintenanceWindowCapacityModel
from repro.models.demand import DemandModel
from repro.sqldb.parser import parse_expression
from repro.vg.library import VGLibrary

#: The verbatim scenario program of paper Figure 2 (comment markers kept).
FIGURE2_DSL = """
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
         AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
         AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
         AS overload
INTO results;

-- ONLINE MODE --
GRAPH OVER @current
   EXPECT overload WITH bold red,
   EXPECT capacity WITH blue y2,
   EXPECT_STDDEV demand WITH orange y2;

-- OFFLINE MODE --
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
"""


def build_demo_library(
    *,
    with_growth_arg: bool = False,
    with_initial_arg: bool = False,
) -> VGLibrary:
    """The VG-Function library backing the demo scenario."""
    library = VGLibrary()
    library.register(DemandModel(with_growth_arg=with_growth_arg))
    library.register(CapacityModel(with_initial_arg=with_initial_arg))
    library.register(MaintenanceWindowCapacityModel())
    return library


def _demo_space(purchase_step: int = 4) -> list[Parameter]:
    return [
        Parameter.from_range("current", 0, 52, 1),
        Parameter.from_range("purchase1", 0, 52, purchase_step),
        Parameter.from_range("purchase2", 0, 52, purchase_step),
        Parameter.from_set("feature", (12, 36, 44)),
    ]


def build_risk_vs_cost(
    purchase_step: int = 4, overload_threshold: float = 0.01
) -> tuple[Scenario, VGLibrary]:
    """The Figure 2 scenario, built programmatically.

    ``purchase_step`` widens the purchase grids for faster sweeps in tests
    and benchmarks (the paper uses STEP BY 4).
    """
    space = ParameterSpace(_demo_space(purchase_step))
    outputs = [
        VGOutput(
            alias="demand",
            vg_name="DemandModel",
            index_expr=parse_expression("@current"),
            model_args=(parse_expression("@feature"),),
        ),
        VGOutput(
            alias="capacity",
            vg_name="CapacityModel",
            index_expr=parse_expression("@current"),
            model_args=(
                parse_expression("@purchase1"),
                parse_expression("@purchase2"),
            ),
        ),
        DerivedOutput(
            alias="overload",
            expression=parse_expression(
                "CASE WHEN capacity < demand THEN 1 ELSE 0 END"
            ),
        ),
    ]
    graph = GraphSpec(
        axis="current",
        series=(
            GraphSeries(kind="EXPECT", alias="overload", style=("bold", "red")),
            GraphSeries(kind="EXPECT", alias="capacity", style=("blue", "y2")),
            GraphSeries(kind="EXPECT_STDDEV", alias="demand", style=("orange", "y2")),
        ),
    )
    optimize = OptimizeSpec(
        select_parameters=("feature", "purchase1", "purchase2"),
        constraint=parse_expression(f"MAX(EXPECT overload) < {overload_threshold}"),
        objectives=(
            OptimizeObjective(direction="MAX", parameter="purchase1"),
            OptimizeObjective(direction="MAX", parameter="purchase2"),
        ),
        group_by=("feature", "purchase1", "purchase2"),
    )
    scenario = Scenario(
        name="risk_vs_cost",
        space=space,
        axis="current",
        outputs=outputs,
        graph=graph,
        optimize=optimize,
        source_sql=FIGURE2_DSL,
    )
    return scenario, build_demo_library()


def build_growth_scenario(purchase_step: int = 8) -> tuple[Scenario, VGLibrary]:
    """Extended what-if: demand scaled by an uncertain-growth multiplier.

    Exercises genuinely *affine* fingerprint maps (scale != 1) across the
    ``@growth`` axis — the §3.3 "different user growth" what-if.
    """
    space = ParameterSpace(
        _demo_space(purchase_step)
        + [Parameter.from_set("growth", (0.8, 1.0, 1.2))]
    )
    outputs = [
        VGOutput(
            alias="demand",
            vg_name="DemandModel",
            index_expr=parse_expression("@current"),
            model_args=(parse_expression("@feature"), parse_expression("@growth")),
        ),
        VGOutput(
            alias="capacity",
            vg_name="CapacityModel",
            index_expr=parse_expression("@current"),
            model_args=(
                parse_expression("@purchase1"),
                parse_expression("@purchase2"),
            ),
        ),
        DerivedOutput(
            alias="overload",
            expression=parse_expression("CASE WHEN capacity < demand THEN 1 ELSE 0 END"),
        ),
        DerivedOutput(
            alias="headroom",
            expression=parse_expression("capacity - demand"),
        ),
    ]
    graph = GraphSpec(
        axis="current",
        series=(
            GraphSeries(kind="EXPECT", alias="overload", style=("bold", "red")),
            GraphSeries(kind="EXPECT", alias="headroom", style=("green",)),
        ),
    )
    optimize = OptimizeSpec(
        select_parameters=("feature", "purchase1", "purchase2", "growth"),
        constraint=parse_expression("MAX(EXPECT overload) < 0.05"),
        objectives=(
            OptimizeObjective(direction="MAX", parameter="purchase1"),
            OptimizeObjective(direction="MAX", parameter="purchase2"),
        ),
        group_by=("feature", "purchase1", "purchase2", "growth"),
    )
    scenario = Scenario(
        name="growth_what_if",
        space=space,
        axis="current",
        outputs=outputs,
        graph=graph,
        optimize=optimize,
    )
    return scenario, build_demo_library(with_growth_arg=True)


def build_maintenance_scenario() -> tuple[Scenario, VGLibrary]:
    """Markov-shortcut demo: capacity driven by maintenance-window failures.

    Used by experiment C6; the chain is deterministic outside windows, so
    shortcut estimators skip most steps.
    """
    space = ParameterSpace(
        [
            Parameter.from_range("current", 0, 52, 1),
            Parameter.from_set("phase", (0, 3, 6)),
            Parameter.from_set("feature", (12, 36, 44)),
        ]
    )
    outputs = [
        VGOutput(
            alias="demand",
            vg_name="DemandModel",
            index_expr=parse_expression("@current"),
            model_args=(parse_expression("@feature"),),
        ),
        VGOutput(
            alias="capacity",
            vg_name="MaintenanceCapacityModel",
            index_expr=parse_expression("@current"),
            model_args=(parse_expression("@phase"),),
        ),
        DerivedOutput(
            alias="overload",
            expression=parse_expression("CASE WHEN capacity < demand THEN 1 ELSE 0 END"),
        ),
    ]
    scenario = Scenario(
        name="maintenance_windows",
        space=space,
        axis="current",
        outputs=outputs,
    )
    return scenario, build_demo_library()

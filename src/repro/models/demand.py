"""The demand forecast model (paper §3.1).

*"The DemandModel is a daily demand forecast expressed as a simple gaussian.
A second gaussian is added to the first after the feature release date,
representing additional demand resulting from the released feature."*

We simulate per-week CPU-core demand over one year (53 weeks, 0..52):

* baseline: ``base + trend*t + N(0, sigma_base)`` per week;
* feature surge, for ``t >= feature``: ``surge_slope*(t - feature) +
  N(surge_jump, sigma_surge)`` per week.

Fingerprint behaviour by construction (and verified in tests):

* weeks before both feature dates: **identity** across feature-date changes;
* weeks after both: the surge differs by the deterministic constant
  ``surge_slope * (f_old - f_new)`` — a **shift** map (this is the §3.2
  "slope of the usage graph changes, yet most weeks remap" claim);
* weeks between the two dates: the surge noise appears on one side only —
  **unmapped**, re-simulated.

The optional ``growth`` argument multiplies the whole curve, producing
genuinely **affine** (scale != 1) fingerprint maps across growth changes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import VGFunctionError
from repro.vg.base import VGFunction

WEEKS_PER_YEAR = 53


class DemandModel(VGFunction):
    """Weekly demand forecast with a feature-release surge.

    SQL forms (via the PDB extension):
    ``DemandModel(seed, t, feature)`` and ``DemandModelT(seed, feature)``;
    with ``with_growth_arg=True`` an extra trailing ``growth`` argument is
    accepted (domain e.g. ``SET (0.8, 1.0, 1.2)``).
    """

    def __init__(
        self,
        name: str = "DemandModel",
        n_weeks: int = WEEKS_PER_YEAR,
        base: float = 5000.0,
        trend: float = 25.0,
        sigma_base: float = 120.0,
        surge_jump: float = 250.0,
        surge_slope: float = 15.0,
        sigma_surge: float = 90.0,
        with_growth_arg: bool = False,
    ) -> None:
        if n_weeks < 1:
            raise VGFunctionError(f"n_weeks must be >= 1, got {n_weeks}")
        if min(sigma_base, sigma_surge) < 0:
            raise VGFunctionError("sigmas must be >= 0")
        self.name = name
        self.n_components = int(n_weeks)
        self.arg_names = ("feature", "growth") if with_growth_arg else ("feature",)
        self.base = float(base)
        self.trend = float(trend)
        self.sigma_base = float(sigma_base)
        self.surge_jump = float(surge_jump)
        self.surge_slope = float(surge_slope)
        self.sigma_surge = float(sigma_surge)
        self.with_growth_arg = bool(with_growth_arg)
        super().__init__()

    # -- noise ------------------------------------------------------------

    def _noise(self, seed: int) -> tuple[np.ndarray, np.ndarray]:
        """Baseline and surge noise vectors — drawn identically for every
        parameterization of one seed (the alignment fingerprints exploit)."""
        rng = self.rng(seed, ())
        base_noise = rng.normal(0.0, 1.0, size=self.n_components)
        surge_noise = rng.normal(0.0, 1.0, size=self.n_components)
        return base_noise, surge_noise

    def _split_args(self, args: tuple[Any, ...]) -> tuple[int, float]:
        if self.with_growth_arg:
            feature, growth = args
        else:
            (feature,) = args
            growth = 1.0
        feature = int(feature)
        growth = float(growth)
        if growth <= 0:
            raise VGFunctionError(f"{self.name}: growth must be > 0, got {growth}")
        return feature, growth

    # -- generation ---------------------------------------------------------

    def generate(self, seed: int, args: tuple[Any, ...]) -> np.ndarray:
        feature, growth = self._split_args(args)
        base_noise, surge_noise = self._noise(seed)
        weeks = np.arange(self.n_components, dtype=float)
        demand = self.base + self.trend * weeks + self.sigma_base * base_noise
        released = weeks >= feature
        surge = (
            self.surge_jump
            + self.surge_slope * (weeks - feature)
            + self.sigma_surge * surge_noise
        )
        demand = demand + np.where(released, surge, 0.0)
        return growth * demand

    def generate_partial(
        self, seed: int, args: tuple[Any, ...], components: np.ndarray
    ) -> np.ndarray:
        """Weeks are independent, so partial generation is genuinely partial."""
        feature, growth = self._split_args(args)
        base_noise, surge_noise = self._noise(seed)
        weeks = components.astype(float)
        demand = self.base + self.trend * weeks + self.sigma_base * base_noise[components]
        released = weeks >= feature
        surge = (
            self.surge_jump
            + self.surge_slope * (weeks - feature)
            + self.sigma_surge * surge_noise[components]
        )
        demand = demand + np.where(released, surge, 0.0)
        return growth * demand

    # -- analytics (used by tests) ------------------------------------------------

    def expected_demand(self, week: int, feature: int, growth: float = 1.0) -> float:
        """Analytic E[demand] at one week (noise means are zero)."""
        value = self.base + self.trend * week
        if week >= feature:
            value += self.surge_jump + self.surge_slope * (week - feature)
        return growth * value

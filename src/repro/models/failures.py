"""Hardware failure models.

Paper §3.1: *"The Capacity Model is expressed as an aggregate of many
different individual models, each expressing different classes of hardware
failures, as well as expected time from new hardware purchase to
deployment."*

Each :class:`FailureClass` models one class of failures as a marked Poisson
process per week: the number of failure events is Poisson, and each event
destroys a random number of cores. Severity draws are truncated at zero.

RNG discipline: every class consumes a *fixed* number of draws per week
regardless of model arguments, so the same seed produces the same failure
history under any purchase schedule — the alignment fingerprinting exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VGFunctionError


@dataclass(frozen=True)
class FailureClass:
    """One class of hardware failure.

    ``weekly_rate`` — expected failure events per week (Poisson rate);
    ``cores_lost_mean`` / ``cores_lost_sigma`` — per-event severity
    (Gaussian, truncated at zero).
    """

    name: str
    weekly_rate: float
    cores_lost_mean: float
    cores_lost_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.weekly_rate < 0:
            raise VGFunctionError(
                f"failure class {self.name!r}: weekly_rate must be >= 0"
            )
        if self.cores_lost_mean < 0:
            raise VGFunctionError(
                f"failure class {self.name!r}: cores_lost_mean must be >= 0"
            )
        if self.cores_lost_sigma < 0:
            raise VGFunctionError(
                f"failure class {self.name!r}: cores_lost_sigma must be >= 0"
            )

    def sample_weekly_losses(self, rng: np.random.Generator, n_weeks: int) -> np.ndarray:
        """Cores lost per week over ``n_weeks`` (vectorized, fixed draw count)."""
        counts = rng.poisson(self.weekly_rate, size=n_weeks).astype(float)
        severity = rng.normal(self.cores_lost_mean, self.cores_lost_sigma, size=n_weeks)
        severity = np.clip(severity, 0.0, None)
        return counts * severity

    def expected_weekly_loss(self) -> float:
        """Analytic expectation of cores lost per week (ignoring truncation)."""
        return self.weekly_rate * self.cores_lost_mean


def default_failure_classes() -> tuple[FailureClass, ...]:
    """Failure classes representative of the paper's datacenter setting.

    The paper used arbitrary (IP-scrubbed) numbers; these are chosen so that
    failures erode a visible but not dominant share of capacity over a year.
    """
    return (
        FailureClass("disk", weekly_rate=2.0, cores_lost_mean=6.0, cores_lost_sigma=1.5),
        FailureClass("psu", weekly_rate=0.5, cores_lost_mean=30.0, cores_lost_sigma=8.0),
        FailureClass("switch", weekly_rate=0.1, cores_lost_mean=120.0, cores_lost_sigma=30.0),
    )


def total_weekly_losses(
    classes: tuple[FailureClass, ...], rng: np.random.Generator, n_weeks: int
) -> np.ndarray:
    """Sum of per-class weekly losses (consumes draws in class order)."""
    total = np.zeros(n_weeks, dtype=float)
    for failure_class in classes:
        total += failure_class.sample_weekly_losses(rng, n_weeks)
    return total

"""The Fuzzy Prophet scenario DSL (paper Figure 2)."""

from repro.dsl.parser import parse_scenario

__all__ = ["parse_scenario"]

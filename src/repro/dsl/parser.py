"""Parser for the Fuzzy Prophet scenario DSL (paper Figure 2).

The DSL is TSQL plus Prophet extensions, in three sections:

* ``DECLARE PARAMETER @p AS RANGE a TO b STEP BY s`` / ``AS SET (v, ...)``
* the scenario query: ``SELECT <VG calls and derived expressions> INTO t``
* metadata: ``GRAPH OVER @axis EXPECT alias WITH style, ...`` and/or
  ``OPTIMIZE SELECT @p... FROM t WHERE <constraint> [GROUP BY ...]
  FOR MAX @p, ...``

:func:`parse_scenario` turns the whole program into a
:class:`~repro.core.scenario.Scenario`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import DslError
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.scenario import (
    DerivedOutput,
    GraphSeries,
    GraphSpec,
    OptimizeObjective,
    OptimizeSpec,
    Scenario,
    VGOutput,
)
from repro.sqldb.ast_nodes import FunctionCall, Select
from repro.sqldb.functions import builtin_scalar_functions
from repro.sqldb.parser import parse_expression, parse_statement
from repro.sqldb.aggregates import is_aggregate_name
from repro.sqldb.tokenizer import tokenize
from repro.sqldb.tokens import Token, TokenType

_BUILTIN_SCALARS = frozenset(builtin_scalar_functions())


def parse_scenario(
    text: str,
    name: str = "scenario",
    vg_names: Optional[Sequence[str]] = None,
) -> Scenario:
    """Parse a full DSL program into a Scenario.

    ``vg_names`` (optional) pins which function names are VG-Functions;
    without it, any non-builtin, non-aggregate call in the SELECT list is
    treated as a VG call.
    """
    chunks = _split_statements(text)
    if not chunks:
        raise DslError("empty scenario program")

    parameters: list[Parameter] = []
    select_text: Optional[str] = None
    graph_text: Optional[str] = None
    optimize_text: Optional[str] = None

    for chunk in chunks:
        head = _first_keyword(chunk)
        if head == "DECLARE":
            parameters.append(_parse_declare(chunk))
        elif head == "SELECT":
            if select_text is not None:
                raise DslError("scenario program has more than one SELECT")
            select_text = chunk
        elif head == "GRAPH":
            if graph_text is not None:
                raise DslError("scenario program has more than one GRAPH directive")
            graph_text = chunk
        elif head == "OPTIMIZE":
            if optimize_text is not None:
                raise DslError("scenario program has more than one OPTIMIZE block")
            optimize_text = chunk
        else:
            raise DslError(f"unexpected statement starting with {head!r}")

    if not parameters:
        raise DslError("scenario declares no parameters")
    if select_text is None:
        raise DslError("scenario has no SELECT query")

    space = ParameterSpace(parameters)
    graph = _parse_graph(graph_text) if graph_text is not None else None
    outputs, results_table = _parse_select(select_text, vg_names)
    axis = _deduce_axis(graph, select_text, space, vg_names)
    optimize = _parse_optimize(optimize_text) if optimize_text is not None else None

    return Scenario(
        name=name,
        space=space,
        axis=axis,
        outputs=outputs,
        graph=graph,
        optimize=optimize,
        source_sql=text,
        results_table=results_table or "results",
    )


# -- statement splitting ------------------------------------------------------


def _split_statements(text: str) -> list[str]:
    """Split the program on top-level ';' using token positions.

    Comments are already invisible to the tokenizer, so ``-- SECTION --``
    markers in Figure 2 are harmless.
    """
    tokens = tokenize(text)
    chunks: list[str] = []
    start: Optional[int] = None
    for token in tokens:
        if token.type == TokenType.EOF:
            if start is not None:
                piece = text[start:].strip()
                if piece:
                    chunks.append(piece)
            break
        if token.type == TokenType.PUNCT and token.value == ";":
            if start is not None:
                piece = text[start : token.position].strip()
                if piece:
                    chunks.append(piece)
                start = None
            continue
        if start is None:
            start = token.position
    return chunks


def _first_keyword(chunk: str) -> str:
    tokens = tokenize(chunk)
    if tokens and tokens[0].type == TokenType.KEYWORD:
        return str(tokens[0].value)
    return tokens[0].describe() if tokens else ""


# -- DECLARE PARAMETER -----------------------------------------------------------


def _parse_declare(chunk: str) -> Parameter:
    tokens = tokenize(chunk)
    cursor = _Cursor(tokens, chunk)
    cursor.expect_keyword("DECLARE")
    cursor.expect_keyword("PARAMETER")
    name = cursor.expect_variable()
    cursor.expect_keyword("AS")
    if cursor.accept_keyword("RANGE"):
        start = cursor.expect_int()
        cursor.expect_keyword("TO")
        stop = cursor.expect_int()
        step = 1
        if cursor.accept_keyword("STEP"):
            cursor.expect_keyword("BY")
            step = cursor.expect_int()
        cursor.expect_eof()
        return Parameter.from_range(name, start, stop, step)
    if cursor.accept_keyword("SET"):
        cursor.expect_punct("(")
        values = [cursor.expect_number()]
        while cursor.accept_punct(","):
            values.append(cursor.expect_number())
        cursor.expect_punct(")")
        cursor.expect_eof()
        return Parameter.from_set(name, values)
    raise DslError(f"parameter @{name}: expected RANGE or SET")


# -- SELECT conversion ------------------------------------------------------------


def _is_vg_call(call: FunctionCall, vg_names: Optional[Sequence[str]]) -> bool:
    lowered = call.name.lower()
    if vg_names is not None:
        return lowered in {n.lower() for n in vg_names}
    if call.star or is_aggregate_name(call.name):
        return False
    if lowered in _BUILTIN_SCALARS:
        return False
    if call.name.upper() in ("EXPECT", "EXPECT_STDDEV"):
        return False
    return True


def _parse_select(
    chunk: str, vg_names: Optional[Sequence[str]]
) -> tuple[list[VGOutput | DerivedOutput], Optional[str]]:
    statement = parse_statement(chunk)
    if not isinstance(statement, Select):
        raise DslError("scenario query must be a SELECT statement")
    if statement.source is not None:
        raise DslError(
            "the scenario SELECT takes models from its select list; a FROM "
            "clause is not supported here"
        )
    outputs: list[VGOutput | DerivedOutput] = []
    for index, item in enumerate(statement.items):
        if item.star:
            raise DslError("SELECT * is not meaningful in a scenario query")
        assert item.expression is not None
        alias = item.alias or f"column{index + 1}"
        expression = item.expression
        if isinstance(expression, FunctionCall) and _is_vg_call(expression, vg_names):
            if not expression.args:
                raise DslError(
                    f"VG call {expression.name} needs at least the axis argument"
                )
            outputs.append(
                VGOutput(
                    alias=alias,
                    vg_name=expression.name,
                    index_expr=expression.args[0],
                    model_args=tuple(expression.args[1:]),
                )
            )
        else:
            outputs.append(DerivedOutput(alias=alias, expression=expression))
    return outputs, statement.into


def _deduce_axis(
    graph: Optional[GraphSpec],
    select_text: str,
    space: ParameterSpace,
    vg_names: Optional[Sequence[str]],
) -> str:
    if graph is not None:
        return graph.axis.lstrip("@").lower()
    # No GRAPH directive: use the first VG call's first argument.
    statement = parse_statement(select_text)
    if isinstance(statement, Select):
        for item in statement.items:
            expression = item.expression
            if isinstance(expression, FunctionCall) and _is_vg_call(expression, vg_names):
                from repro.sqldb.expressions import collect_variables

                variables = collect_variables(expression.args[0]) if expression.args else set()
                if len(variables) == 1:
                    return next(iter(variables))
    raise DslError(
        "cannot deduce the axis parameter; add a GRAPH OVER directive"
    )


# -- GRAPH directive ----------------------------------------------------------------


def _parse_graph(chunk: str) -> GraphSpec:
    tokens = tokenize(chunk)
    cursor = _Cursor(tokens, chunk)
    cursor.expect_keyword("GRAPH")
    cursor.expect_keyword("OVER")
    axis = cursor.expect_variable()
    series: list[GraphSeries] = []
    while True:
        kind = cursor.expect_one_of_keywords("EXPECT", "EXPECT_STDDEV")
        alias = cursor.expect_identifier()
        style: list[str] = []
        if cursor.accept_keyword("WITH"):
            while cursor.peek_is_style_word():
                style.append(cursor.take_word())
        series.append(GraphSeries(kind=kind, alias=alias, style=tuple(style)))
        if not cursor.accept_punct(","):
            break
    cursor.expect_eof()
    if not series:
        raise DslError("GRAPH directive declares no series")
    return GraphSpec(axis=axis, series=tuple(series))


# -- OPTIMIZE block ------------------------------------------------------------------


def _parse_optimize(chunk: str) -> OptimizeSpec:
    tokens = tokenize(chunk)
    cursor = _Cursor(tokens, chunk)
    cursor.expect_keyword("OPTIMIZE")
    cursor.expect_keyword("SELECT")
    select_parameters = [cursor.expect_variable()]
    while cursor.accept_punct(","):
        select_parameters.append(cursor.expect_variable())
    if cursor.accept_keyword("FROM"):
        cursor.expect_identifier()  # results table (informational)

    constraint = None
    if cursor.accept_keyword("WHERE"):
        constraint_text = cursor.text_until_keywords("GROUP", "FOR")
        constraint = parse_expression(constraint_text)

    group_by: list[str] = []
    if cursor.accept_keyword("GROUP"):
        cursor.expect_keyword("BY")
        group_by.append(cursor.expect_identifier())
        while cursor.accept_punct(","):
            group_by.append(cursor.expect_identifier())

    objectives: list[OptimizeObjective] = []
    if cursor.accept_keyword("FOR"):
        while True:
            direction = cursor.expect_one_of_keywords("MAX", "MIN")
            parameter = cursor.expect_variable()
            objectives.append(OptimizeObjective(direction=direction, parameter=parameter))
            if not cursor.accept_punct(","):
                break
    cursor.expect_eof()
    if not objectives:
        raise DslError("OPTIMIZE block needs at least one FOR MAX/MIN objective")
    return OptimizeSpec(
        select_parameters=tuple(select_parameters),
        constraint=constraint,
        objectives=tuple(objectives),
        group_by=tuple(group_by),
    )


# -- token cursor -------------------------------------------------------------------


class _Cursor:
    """Tiny token cursor for the directive grammars."""

    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._pos = 0

    def peek(self) -> Token:
        return self._tokens[min(self._pos, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def error(self, message: str) -> DslError:
        return DslError(f"{message}, found {self.peek().describe()}")

    def accept_keyword(self, word: str) -> bool:
        if self.peek().matches_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def expect_one_of_keywords(self, *words: str) -> str:
        token = self.peek()
        if token.matches_keyword(*words):
            self.advance()
            return str(token.value)
        raise self.error(f"expected one of {words}")

    def accept_punct(self, char: str) -> bool:
        if self.peek().matches_punct(char):
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def expect_variable(self) -> str:
        token = self.peek()
        if token.type != TokenType.VARIABLE:
            raise self.error("expected @parameter")
        self.advance()
        return str(token.value)

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.type == TokenType.IDENTIFIER:
            self.advance()
            return str(token.value)
        raise self.error("expected identifier")

    def expect_int(self) -> int:
        token = self.peek()
        if token.type == TokenType.INTEGER:
            self.advance()
            return int(token.value)
        if token.matches_operator("-") and self._tokens[self._pos + 1].type == TokenType.INTEGER:
            self.advance()
            return -int(self.advance().value)
        raise self.error("expected integer")

    def expect_number(self) -> int | float:
        token = self.peek()
        if token.type in (TokenType.INTEGER, TokenType.FLOAT):
            self.advance()
            return token.value
        if token.matches_operator("-"):
            self.advance()
            inner = self.peek()
            if inner.type in (TokenType.INTEGER, TokenType.FLOAT):
                self.advance()
                return -inner.value
        raise self.error("expected number")

    def peek_is_style_word(self) -> bool:
        token = self.peek()
        return token.type == TokenType.IDENTIFIER or (
            token.type == TokenType.KEYWORD and token.value not in ("EXPECT", "EXPECT_STDDEV")
            and not token.matches_punct(",")
        )

    def take_word(self) -> str:
        token = self.advance()
        return str(token.value)

    def text_until_keywords(self, *words: str) -> str:
        """Source text from here until (not including) one of ``words``."""
        start_token = self.peek()
        start = start_token.position
        end = len(self._text)
        while True:
            token = self.peek()
            if token.type == TokenType.EOF:
                break
            if token.matches_keyword(*words):
                end = token.position
                break
            self.advance()
        return self._text[start:end].strip()

    def expect_eof(self) -> None:
        if self.peek().type != TokenType.EOF:
            raise self.error("unexpected trailing input")

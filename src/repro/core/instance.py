"""Possible-world instances.

The Guide (paper Figure 1, stage 1) emits a sequence of *instances*: concrete
valuations for every parameter plus the Monte Carlo world identity. In PDB
terminology an instance is one possible world of the scenario at one
parameter point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.vg.seeds import world_seed


@dataclass(frozen=True)
class WorldInstance:
    """One possible world: a parameter point plus a world seed.

    ``point`` maps lowercase parameter names to values (the graph axis, if
    any, is *not* included — it is the component dimension). ``world`` is the
    Monte Carlo replicate index; ``seed`` the derived RNG seed shared across
    parameter points for that replicate.
    """

    point: tuple[tuple[str, Any], ...]
    world: int
    seed: int

    @classmethod
    def make(cls, point: Mapping[str, Any], world: int, base_seed: int) -> "WorldInstance":
        items = tuple(sorted((str(k).lower(), v) for k, v in point.items()))
        return cls(point=items, world=world, seed=world_seed(base_seed, world))

    @property
    def point_dict(self) -> dict[str, Any]:
        return dict(self.point)

    def value(self, name: str) -> Any:
        key = name.lstrip("@").lower()
        for item_name, item_value in self.point:
            if item_name == key:
                return item_value
        raise KeyError(f"instance has no parameter {name!r}")


@dataclass(frozen=True)
class InstanceBatch:
    """A batch of instances at one parameter point (one per world).

    The Query Generator consumes batches: all worlds of one point can be
    expressed as one generated SQL script.
    """

    point: tuple[tuple[str, Any], ...]
    instances: tuple[WorldInstance, ...] = field(default_factory=tuple)

    @classmethod
    def at_point(
        cls, point: Mapping[str, Any], worlds: Sequence[int], base_seed: int
    ) -> "InstanceBatch":
        items = tuple(sorted((str(k).lower(), v) for k, v in point.items()))
        instances = tuple(WorldInstance.make(point, world, base_seed) for world in worlds)
        return cls(point=items, instances=instances)

    @property
    def point_dict(self) -> dict[str, Any]:
        return dict(self.point)

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[WorldInstance]:
        return iter(self.instances)

    @property
    def worlds(self) -> tuple[int, ...]:
        return tuple(instance.world for instance in self.instances)

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(instance.seed for instance in self.instances)

"""Type-preserving serialization of VG parameterization keys.

Basis distributions are keyed by ``(vg_name, tuple(model_args))``, and those
keys travel to disk twice — in the basis archives written by
:mod:`repro.core.persistence` and in the spill files written by the tiered
basis store (:mod:`repro.core.basis_store`). Plain JSON round-trips are not
sound for these keys: tuples come back as lists, so a nested tuple arg
decodes unhashable — a reloaded basis can never exact-hit its original key,
and inserting it into a dict-keyed store crashes. JSON also cannot carry
non-finite floats portably, and offers no way to distinguish a tuple arg
from a genuine list arg.

The scheme here tags every value with its concrete type and reconstructs it
exactly: ``decode_args(encode_args(key)) == key`` with matching types for
every supported value (bool, int, float — non-finite included — str, None,
and arbitrarily nested tuples/lists of those).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import FingerprintError

#: Non-finite floats JSON cannot carry portably, as tagged strings.
_FLOAT_WORDS = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def _encode_value(value: Any) -> Any:
    # bool first: bool is an int subclass and would match the int branch.
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        if math.isfinite(value):
            return {"t": "float", "v": value}
        word = "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
        return {"t": "float", "v": word}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if value is None:
        return {"t": "none"}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"t": "list", "v": [_encode_value(item) for item in value]}
    raise FingerprintError(
        f"cannot encode model arg of type {type(value).__name__}: {value!r}"
    )


def _decode_value(payload: Any) -> Any:
    if not isinstance(payload, dict) or "t" not in payload:
        raise FingerprintError(f"malformed encoded arg: {payload!r}")
    tag = payload["t"]
    if tag == "bool":
        return bool(payload["v"])
    if tag == "int":
        return int(payload["v"])
    if tag == "float":
        raw = payload["v"]
        if isinstance(raw, str):
            if raw not in _FLOAT_WORDS:
                raise FingerprintError(f"unknown float word {raw!r}")
            return _FLOAT_WORDS[raw]
        return float(raw)
    if tag == "str":
        return str(payload["v"])
    if tag == "none":
        return None
    if tag == "tuple":
        return tuple(_decode_value(item) for item in payload["v"])
    if tag == "list":
        return [_decode_value(item) for item in payload["v"]]
    raise FingerprintError(f"unknown encoded arg tag {tag!r}")


def encode_value(value: Any) -> Any:
    """Tag one value for an exact JSON round-trip (public single-value form).

    The ``repro.api`` layered config uses this for its ``to_mapping``
    portable form: every leaf keeps its concrete type (bool vs int, tuple
    vs list, non-finite floats) across a JSON hop.
    """
    return _encode_value(value)


def decode_value(payload: Any) -> Any:
    """Reconstruct a value tagged by :func:`encode_value`."""
    return _decode_value(payload)


def encode_args(args: tuple[Any, ...]) -> str:
    """Serialize a model-args tuple to JSON text, preserving exact types."""
    return json.dumps([_encode_value(value) for value in tuple(args)])


def decode_args(text: str) -> tuple[Any, ...]:
    """Reconstruct a model-args tuple encoded by :func:`encode_args`."""
    return tuple(_decode_value(item) for item in json.loads(text))


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def decode_legacy_args(text: str) -> tuple[Any, ...]:
    """Decode version-1 archives (plain JSON args).

    V1 encoding collapsed tuples and lists into JSON arrays; decoding them
    as nested tuples restores hashability (store keys crash on lists) and
    the original exact-hit keys, since basis args were tuples to begin
    with. A genuine list arg from a v1 archive comes back as a tuple —
    that distinction was lost at encode time and is why v2 tags types.
    """
    return tuple(_tuplify(item) for item in json.loads(text))

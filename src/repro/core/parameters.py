"""Scenario parameters and the parameter space.

Parameters are the ``@variables`` the paper's DSL declares::

    DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 1;
    DECLARE PARAMETER @feature AS SET (12, 36, 44);

Every parameter has a finite, ordered domain of discrete values. A
*point* is one full assignment; the *space* is the cartesian grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ParameterError


@dataclass(frozen=True)
class Parameter:
    """One named parameter with its finite ordered domain."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ParameterError("parameter name must be non-empty")
        if not self.values:
            raise ParameterError(f"parameter @{self.name} has an empty domain")
        if len(set(self.values)) != len(self.values):
            raise ParameterError(f"parameter @{self.name} has duplicate domain values")

    @classmethod
    def from_range(cls, name: str, start: int, stop: int, step: int = 1) -> "Parameter":
        """``RANGE start TO stop STEP BY step`` — inclusive of ``stop``."""
        if step <= 0:
            raise ParameterError(f"parameter @{name}: STEP BY must be positive, got {step}")
        if stop < start:
            raise ParameterError(f"parameter @{name}: range {start} TO {stop} is empty")
        return cls(name, tuple(range(start, stop + 1, step)))

    @classmethod
    def from_set(cls, name: str, values: Sequence[Any]) -> "Parameter":
        """``SET (v1, v2, ...)`` — explicit discrete domain."""
        return cls(name, tuple(values))

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def index_of(self, value: Any) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ParameterError(
                f"value {value!r} not in domain of @{self.name}"
            ) from None

    def default(self) -> Any:
        """The default slider position: the first domain value."""
        return self.values[0]

    def neighbors(self, value: Any) -> tuple[Any, ...]:
        """Domain values adjacent to ``value`` (for proactive exploration)."""
        index = self.index_of(value)
        result = []
        if index > 0:
            result.append(self.values[index - 1])
        if index < len(self.values) - 1:
            result.append(self.values[index + 1])
        return tuple(result)


class ParameterSpace:
    """An ordered collection of parameters; iterable as a full grid."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self._parameters: dict[str, Parameter] = {}
        for parameter in parameters:
            key = parameter.name.lower()
            if key in self._parameters:
                raise ParameterError(f"duplicate parameter @{parameter.name}")
            self._parameters[key] = parameter

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._parameters

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._parameters.values())

    def parameter(self, name: str) -> Parameter:
        try:
            return self._parameters[name.lower()]
        except KeyError:
            raise ParameterError(f"no such parameter: @{name}") from None

    def grid_size(self, *, exclude: Sequence[str] = ()) -> int:
        """Number of points in the full grid (optionally excluding axes)."""
        excluded = {name.lower() for name in exclude}
        size = 1
        for parameter in self:
            if parameter.name.lower() not in excluded:
                size *= len(parameter)
        return size

    def validate_point(self, point: Mapping[str, Any]) -> dict[str, Any]:
        """Check a full assignment; returns it with canonical (lower) keys."""
        normalized = {str(k).lstrip("@").lower(): v for k, v in point.items()}
        missing = [p.name for p in self if p.name.lower() not in normalized]
        if missing:
            raise ParameterError(f"point is missing parameters: {missing}")
        extra = [k for k in normalized if k not in self._parameters]
        if extra:
            raise ParameterError(f"point has unknown parameters: {extra}")
        for parameter in self:
            value = normalized[parameter.name.lower()]
            if value not in parameter:
                raise ParameterError(
                    f"value {value!r} not in domain of @{parameter.name} "
                    f"(domain: {parameter.values})"
                )
        return normalized

    def default_point(self) -> dict[str, Any]:
        """Every parameter at its default (first) value."""
        return {p.name.lower(): p.default() for p in self}

    def grid(self, *, exclude: Sequence[str] = ()) -> Iterator[dict[str, Any]]:
        """Iterate the full cartesian grid in row-major domain order.

        ``exclude`` removes axes (the graph axis is excluded when the engine
        treats it as the component dimension rather than a parameter).
        """
        excluded = {name.lower() for name in exclude}
        active = [p for p in self if p.name.lower() not in excluded]
        names = [p.name.lower() for p in active]
        for combo in itertools.product(*(p.values for p in active)):
            yield dict(zip(names, combo))

    def point_key(self, point: Mapping[str, Any], *, exclude: Sequence[str] = ()) -> tuple:
        """A hashable canonical key for a (partial) point."""
        excluded = {name.lower() for name in exclude}
        normalized = {str(k).lstrip("@").lower(): v for k, v in point.items()}
        return tuple(
            (p.name.lower(), normalized[p.name.lower()])
            for p in self
            if p.name.lower() not in excluded and p.name.lower() in normalized
        )

    def without(self, *names: str) -> "ParameterSpace":
        """A copy of this space with the given parameters removed."""
        dropped = {name.lstrip("@").lower() for name in names}
        return ParameterSpace([p for p in self if p.name.lower() not in dropped])

"""The Prophet engine: the evaluation cycle of paper Figure 1.

One :class:`ProphetEngine` owns a scenario, a VG library, a SQL catalog with
the PDB extension registered, the fingerprint registry, the Storage Manager,
and the Result Aggregator. Its unit of work is *evaluating one parameter
point*: produce (or reuse) the Monte Carlo sample matrix of every VG model,
land samples in SQL, run the generated combine and aggregate queries, and
return per-axis statistics.

The cycle (stage names match Figure 1):

1. **guide** — the caller (GridGuide / PriorityGuide / user) picks the point;
2. **querygen + sql** — generated pure SQL samples fresh worlds through the
   VG table functions and lands them in the samples tables;
3. **storage** — the Storage Manager intercepts with basis distributions:
   exact hits and fingerprint-mapped reuse skip stage 2 for the mapped
   components entirely;
4. **aggregate** — the combine and aggregate queries produce the statistics
   that feed the online graph or the offline optimizer, and the results are
   fed back (stored as new basis distributions) to direct future sampling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.obs.trace import NULL_TRACER
from repro.core.aggregator import (
    AxisStatistics,
    MergeableAxisStats,
    ResultAggregator,
)
from repro.core.fingerprint.correlation import CorrelationPolicy
from repro.core.fingerprint.fingerprint import FingerprintSpec
from repro.core.fingerprint.registry import FingerprintRegistry
from repro.core.instance import InstanceBatch
from repro.core.querygen import QueryGenerator
from repro.core.rounds import RoundPlan, max_ci_halfwidth
from repro.core.sampling import SAMPLING_BACKENDS, SamplingPlane
from repro.core.scenario import Scenario, VGOutput
from repro.core.storage import ReuseReport, StorageManager
from repro.sqldb.catalog import Catalog
from repro.sqldb.executor import Executor
from repro.sqldb.expressions import collect_variables
from repro.sqldb.pdbext import register_library
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.table import ResultSet
from repro.sqldb.types import SqlType
from repro.vg.library import VGLibrary


@dataclass(frozen=True)
class ProphetConfig:
    """Engine-wide knobs."""

    n_worlds: int = 200
    base_seed: int = 42
    fingerprint_seeds: int = 8
    correlation_tolerance: float = 1e-6
    min_mapped_fraction: float = 0.05
    refinement_first: int = 25
    refinement_growth: float = 2.0
    #: Cache finished point statistics: a re-visited point (same worlds)
    #: skips the combine/aggregate queries entirely. Disabled automatically
    #: when a caller passes ``reuse=False`` (baseline measurements).
    enable_stats_cache: bool = True
    #: Memory-tier bounds of the basis store: maximum resident basis count
    #: and resident sample bytes. ``None`` (default) means unbounded — the
    #: pre-tiering in-RAM behavior.
    basis_cap: Optional[int] = None
    basis_byte_cap: Optional[int] = None
    #: Disk tier: evicted bases spill to npz files here and fault back on
    #: demand. ``None`` drops evicted bases (they degrade to fresh misses).
    basis_dir: Optional[str] = None
    #: Fresh-sampling backend: ``"batched"`` (one generated statement per
    #: world slice, the default) or ``"loop"`` (one INSERT per world, the
    #: bit-identity reference). Backends are bit-identical by contract.
    sampling_backend: str = "batched"

    def __post_init__(self) -> None:
        # Reject bad knobs at construction, not deep in the engine: a config
        # travels (EngineSpec pickles it to workers, the API layer derives it
        # from ClientConfig), so the failure must name the knob, here.
        if self.sampling_backend not in SAMPLING_BACKENDS:
            raise ScenarioError(
                f"unknown sampling backend {self.sampling_backend!r} "
                f"(known: {', '.join(SAMPLING_BACKENDS)})"
            )
        if self.n_worlds < 1:
            raise ScenarioError(f"n_worlds must be >= 1, got {self.n_worlds}")
        if self.basis_cap is not None and self.basis_cap < 0:
            raise ScenarioError(
                f"basis_cap must be >= 0 or None, got {self.basis_cap}"
            )
        if self.basis_byte_cap is not None and self.basis_byte_cap < 0:
            raise ScenarioError(
                f"basis_byte_cap must be >= 0 or None, got {self.basis_byte_cap}"
            )

    def plan(self) -> RoundPlan:
        return RoundPlan(
            n_worlds=self.n_worlds,
            first=min(self.refinement_first, self.n_worlds),
            growth=self.refinement_growth,
        )

    def fingerprint_spec(self) -> FingerprintSpec:
        return FingerprintSpec(n_seeds=self.fingerprint_seeds)

    def correlation_policy(self) -> CorrelationPolicy:
        return CorrelationPolicy(tolerance=self.correlation_tolerance)


def _require_worlds(worlds: Optional[Sequence[int]], entry_point: str) -> None:
    """Shared empty-world-slice guard of every evaluation entry point.

    ``evaluate_point`` and ``sample_fresh`` (and, through them, the serve
    workers) must agree on this behavior: an empty world slice is a caller
    error, never a silently-empty result.
    """
    if not worlds:
        raise ScenarioError(f"{entry_point} needs at least one world")


#: Replacement for the fresh-sampling stage: called with the VG output and
#: the instance batch (one parameter point, a world slice) that no reuse
#: layer could serve; must return the ``(len(batch), n_components)`` sample
#: matrix that :meth:`ProphetEngine._sql_sample` would have produced.
FreshSampler = Callable[[VGOutput, InstanceBatch], np.ndarray]


@dataclass
class StageTimings:
    """Wall-clock seconds attributed to each Figure-1 stage."""

    querygen: float = 0.0
    sql: float = 0.0
    storage: float = 0.0
    aggregate: float = 0.0

    def total(self) -> float:
        return self.querygen + self.sql + self.storage + self.aggregate

    def add(self, other: "StageTimings") -> None:
        self.querygen += other.querygen
        self.sql += other.sql
        self.storage += other.storage
        self.aggregate += other.aggregate


@dataclass(frozen=True)
class PointEvaluation:
    """Everything the engine learned about one parameter point."""

    point: dict[str, Any]
    statistics: AxisStatistics
    samples: dict[str, np.ndarray]  # alias -> (n_worlds, n_components)
    reuse_reports: tuple[ReuseReport, ...]
    timings: StageTimings
    n_worlds: int

    @property
    def fully_fresh(self) -> bool:
        return all(report.source == "fresh" for report in self.reuse_reports)

    @property
    def any_reuse(self) -> bool:
        return any(report.source != "fresh" for report in self.reuse_reports)


class ProphetEngine:
    """Scenario evaluation with fingerprint-driven computation reuse."""

    def __init__(
        self,
        scenario: Scenario,
        library: VGLibrary,
        config: ProphetConfig | None = None,
    ) -> None:
        self.scenario = scenario
        self.library = library
        self.config = config or ProphetConfig()
        scenario.check_against_library(library)

        self.catalog = Catalog(name=f"prophet_{scenario.name}")
        self.executor = Executor(self.catalog)
        register_library(self.catalog, library)

        self.querygen = QueryGenerator(scenario)
        self.sampling = SamplingPlane(
            self.querygen,
            self.executor,
            library,
            backend=self.config.sampling_backend,
        )
        self.registry = FingerprintRegistry(
            self.config.fingerprint_spec(), self.config.correlation_policy()
        )
        self.storage = StorageManager(
            self.registry,
            basis_cap=self.config.basis_cap,
            basis_byte_cap=self.config.basis_byte_cap,
            spill_dir=self.config.basis_dir,
        )
        self.aggregator = ResultAggregator(scenario.output_aliases)
        #: Observability is strictly opt-in: the shared no-op tracer and no
        #: profiler until :meth:`set_tracer` / the API layer installs them.
        self.tracer = NULL_TRACER
        self.profiler = None
        self.total_timings = StageTimings()
        self.points_evaluated = 0
        self._stats_cache: dict[tuple, PointEvaluation] = {}
        # Per-week statistics memo: joint-sample content -> aggregate row.
        # Implements the §3.2 claim that "only a small portion of the output
        # statistics is recomputed" — a week whose joint samples (and the
        # parameter values its derived expressions read) are unchanged
        # reuses its statistics without touching SQL.
        self._week_stats_cache: dict[bytes, tuple] = {}
        self._derived_params = self._collect_derived_params()
        self.week_stats_hits = 0
        self.week_stats_misses = 0

    # -- observability -------------------------------------------------------

    def set_tracer(self, tracer: Any) -> None:
        """Install one tracer across the engine and its planes.

        The sampling plane and the basis tier record their own spans; they
        must share the engine's tracer so the trace is one timeline.
        """
        self.tracer = tracer
        self.sampling.tracer = tracer
        self.storage.tier.tracer = tracer

    # -- public API ----------------------------------------------------------

    def evaluate_point(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        reuse: bool = True,
        sampler: Optional["FreshSampler"] = None,
    ) -> PointEvaluation:
        """Evaluate the scenario at one sweep point (axis excluded).

        ``worlds`` defaults to all configured Monte Carlo worlds; the online
        mode passes growing prefixes for progressive refinement.

        ``sampler`` replaces the generated-SQL fresh-sampling stage (and
        nothing else): it is called exactly where :meth:`_sql_sample` would
        be, for precisely the (output, world-slice) pairs that no reuse
        layer could serve. ``repro.serve`` passes a sampler that shards the
        world slice across a process pool; because each world's seed is a
        pure function of ``(base_seed, world)`` (see
        :func:`repro.vg.seeds.world_seed`), a shard evaluated elsewhere
        produces the same rows this engine would, and every downstream
        stage — storage, fingerprint mapping, combine/aggregate, the week
        memo — runs unchanged on the merged samples. Sharded evaluation is
        therefore bit-identical to sequential by construction.
        """
        profiler = self.profiler
        if profiler is None:
            with self.tracer.span("evaluate") as span:
                return self._evaluate_point(point, worlds, reuse, sampler, span)
        with profiler:
            with self.tracer.span("evaluate") as span:
                return self._evaluate_point(point, worlds, reuse, sampler, span)

    def _evaluate_point(
        self,
        point: Mapping[str, Any],
        worlds: Optional[Sequence[int]],
        reuse: bool,
        sampler: Optional["FreshSampler"],
        span: Any,
    ) -> PointEvaluation:
        sweep_space = self.scenario.sweep_space
        validated = self.scenario.validate_sweep_point(point)
        chosen_worlds = tuple(worlds) if worlds is not None else tuple(range(self.config.n_worlds))
        _require_worlds(chosen_worlds, "evaluate_point")
        cache_key = (sweep_space.point_key(validated), chosen_worlds)
        if reuse and self.config.enable_stats_cache:
            cached = self._stats_cache.get(cache_key)
            if cached is not None:
                self.points_evaluated += 1
                span.set(stats_cache_hit=True, n_worlds=cached.n_worlds)
                # Re-label the reuse reports: this serving is a pure cache
                # hit, regardless of how the cached evaluation was produced.
                hit_reports = tuple(
                    ReuseReport(
                        vg_name=r.vg_name,
                        args=r.args,
                        source="exact",
                        basis_args=r.args,
                        mapped_fraction=1.0,
                        components_total=r.components_total,
                        components_recomputed=0,
                        kind_counts={"identity": r.components_total},
                    )
                    for r in cached.reuse_reports
                )
                return PointEvaluation(
                    point=cached.point,
                    statistics=cached.statistics,
                    samples=cached.samples,
                    reuse_reports=hit_reports,
                    timings=StageTimings(),
                    n_worlds=cached.n_worlds,
                )
        batch = InstanceBatch.at_point(validated, chosen_worlds, self.config.base_seed)

        timings = StageTimings()
        reports: list[ReuseReport] = []
        matrices: dict[str, np.ndarray] = {}
        for output in self.scenario.vg_outputs:
            matrix, report = self._samples_for_output(
                output, batch, reuse, timings, sampler
            )
            matrices[output.alias.lower()] = matrix
            reports.append(report)

        statistics = self._combine_and_aggregate(
            validated, batch, matrices, timings, use_week_memo=reuse
        )
        self.total_timings.add(timings)
        self.points_evaluated += 1
        span.set(stats_cache_hit=False, n_worlds=len(chosen_worlds))
        evaluation = PointEvaluation(
            point=validated,
            statistics=statistics,
            samples=matrices,
            reuse_reports=tuple(reports),
            timings=timings,
            n_worlds=len(chosen_worlds),
        )
        if reuse and self.config.enable_stats_cache:
            self._stats_cache[cache_key] = evaluation
        return evaluation

    def sample_fresh(
        self,
        alias: str,
        point: Mapping[str, Any],
        worlds: Sequence[int],
        timings: Optional[StageTimings] = None,
    ) -> np.ndarray:
        """Fresh-sample one VG output over a world slice (shard worker entry).

        Runs only the generated-SQL sampling stage — no storage, no reuse,
        no aggregation. Because each world's seed derives purely from
        ``(base_seed, world)``, the returned ``(len(worlds), n_components)``
        matrix rows are identical to what any other engine with the same
        scenario and config would produce for those worlds, which is what
        makes sharded sampling safe to merge.

        ``timings`` lets the caller keep the stage attribution (shard
        workers ship it back to the coordinator inside the ShardSample).
        """
        output = self.scenario.vg_output(alias)
        validated = self.scenario.validate_sweep_point(point)
        _require_worlds(worlds, "sample_fresh")
        batch = InstanceBatch.at_point(validated, tuple(worlds), self.config.base_seed)
        return self._sql_sample(
            output, batch, timings if timings is not None else StageTimings()
        )

    def invocation_count(self) -> int:
        """Total real VG invocations so far (probes included)."""
        return self.library.total_invocations()

    def component_sample_count(self) -> int:
        return self.library.total_component_samples()

    def reset_counters(self) -> None:
        self.library.reset_counters()

    # -- sampling ---------------------------------------------------------------

    def _samples_for_output(
        self,
        output: VGOutput,
        batch: InstanceBatch,
        reuse: bool,
        timings: StageTimings,
        sampler: Optional["FreshSampler"] = None,
    ) -> tuple[np.ndarray, ReuseReport]:
        function = self.library.get(output.vg_name)
        args = output.model_arg_values(batch.point_dict)
        worlds = batch.worlds
        seeds = batch.seeds

        # Extend a same-args basis that covers only some requested worlds.
        # validated_entry expels adopted bases simulated under a different
        # base seed — they must never be merged with this engine's samples.
        tracer = self.tracer
        with tracer.stage("reuse", timings, attr="storage", alias=output.alias):
            existing = self.storage.validated_entry(
                function, args, self.config.base_seed
            )
        if existing is not None:
            missing = [w for w in worlds if w not in set(existing.worlds)]
            if missing:
                missing_batch = InstanceBatch.at_point(
                    batch.point_dict, missing, self.config.base_seed
                )
                # Extending the world set: try to map the missing worlds from
                # another basis before falling back to fresh simulation.
                fresh = None
                if reuse:
                    with tracer.stage("reuse", timings, attr="storage"):
                        fresh, _ = self.storage.acquire(
                            function,
                            args,
                            missing_batch.worlds,
                            missing_batch.seeds,
                            reuse=True,
                            min_mapped_fraction=self.config.min_mapped_fraction,
                        )
                if fresh is None:
                    fresh = self._fresh_samples(output, missing_batch, timings, sampler)
                merged_worlds = existing.worlds + tuple(missing)
                merged_seeds = existing.seeds + missing_batch.seeds
                merged = np.vstack([existing.samples, fresh])
                with tracer.stage("reuse", timings, attr="storage"):
                    self.storage.store(
                        function, args, merged, merged_worlds, merged_seeds
                    )

        with tracer.stage(
            "reuse", timings, attr="storage", alias=output.alias
        ) as stage:
            samples, report = self.storage.acquire(
                function,
                args,
                worlds,
                seeds,
                reuse=reuse,
                min_mapped_fraction=self.config.min_mapped_fraction,
            )
            stage.set(source=report.source)
        if samples is not None:
            return samples, report

        samples = self._fresh_samples(output, batch, timings, sampler)
        with tracer.stage("reuse", timings, attr="storage"):
            self.storage.store(function, args, samples, worlds, seeds)
        return samples, report

    def _fresh_samples(
        self,
        output: VGOutput,
        batch: InstanceBatch,
        timings: StageTimings,
        sampler: Optional["FreshSampler"],
    ) -> np.ndarray:
        """Fresh samples via the generated-SQL path or a caller's sampler."""
        if sampler is None:
            return self._sql_sample(output, batch, timings)
        with self.tracer.stage(
            "sample", timings, attr="sql", alias=output.alias,
            worlds=len(batch), backend="sampler",
        ):
            samples = np.asarray(sampler(output, batch), dtype=float)
        expected = (len(batch), self.library.get(output.vg_name).n_components)
        if samples.shape != expected:
            raise ScenarioError(
                f"sampler returned shape {samples.shape} for {output.alias!r}, "
                f"expected {expected}"
            )
        return samples

    def _sql_sample(
        self, output: VGOutput, batch: InstanceBatch, timings: StageTimings
    ) -> np.ndarray:
        """Fresh Monte Carlo through the generated-SQL sampling plane.

        The plane's default ``batched`` backend lands the whole world slice
        with one parameterized statement (``@_worlds``/``@_seeds`` plus the
        model's ``@parameters``); the ``loop`` backend executes the per-world
        INSERT template once per world. Both are plan-cache friendly
        (constant text per scenario) and bit-identical by contract — see
        :mod:`repro.core.sampling`.
        """
        return self.sampling.sample(output, batch, timings)

    def _land_samples(
        self,
        output: VGOutput,
        batch: InstanceBatch,
        matrix: np.ndarray,
        weeks: Sequence[int],
        timings: StageTimings,
    ) -> None:
        """Load the given weeks of this batch's matrix into the samples table.

        Fresh evaluations originally landed through SQL; here the Storage
        Manager bulk-loads exactly the weeks whose statistics must be
        recomputed (the analogue of SQL Server's bulk copy path — generated
        SQL still does all combining and aggregation).
        """
        table_name = self.querygen.samples_table(output.alias)
        with self.tracer.stage("sql", timings, stats=self.executor.stats):
            self.executor.execute(self.querygen.drop_samples_table_sql(output.alias))
            self.executor.execute(self.querygen.create_samples_table_sql(output.alias))

        with self.tracer.stage(
            "reuse", timings, attr="storage", alias=output.alias, weeks=len(weeks)
        ):
            table = self.catalog.table(table_name)
            # Column-major bulk load: (world-major, week-minor) row order, same
            # as the row loop this replaces, but without any Python tuples.
            worlds = np.asarray(batch.worlds, dtype=np.int64)
            week_arr = np.asarray(list(weeks), dtype=np.int64)
            world_col = np.repeat(worlds, len(week_arr))
            t_col = np.tile(week_arr, len(worlds))
            value_col = np.ascontiguousarray(
                matrix[:, week_arr], dtype=np.float64
            ).reshape(-1)
            table.load_columnar([world_col, t_col, value_col])

    def _collect_derived_params(self) -> tuple[str, ...]:
        """Parameters read by derived expressions (part of the week memo key)."""
        names: set[str] = set()
        for output in self.scenario.derived_outputs:
            names.update(collect_variables(output.expression))
        names.discard(self.scenario.axis)
        return tuple(sorted(names))

    def _week_key(
        self,
        week: int,
        point: Mapping[str, Any],
        batch: InstanceBatch,
        matrices: Mapping[str, np.ndarray],
    ) -> bytes:
        """Content key of one week's joint samples + relevant parameters."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr((week, batch.worlds)).encode())
        digest.update(
            repr(tuple((name, point.get(name)) for name in self._derived_params)).encode()
        )
        for output in self.scenario.vg_outputs:
            digest.update(matrices[output.alias.lower()][:, week].tobytes())
        return digest.digest()

    def _combine_and_aggregate(
        self,
        point: Mapping[str, Any],
        batch: InstanceBatch,
        matrices: Mapping[str, np.ndarray],
        timings: StageTimings,
        use_week_memo: bool = True,
    ) -> AxisStatistics:
        n_components = next(iter(matrices.values())).shape[1]
        tracer = self.tracer
        with tracer.stage("aggregate", timings) as memo_stage:
            week_keys = [
                self._week_key(week, point, batch, matrices)
                for week in range(n_components)
            ]
            if use_week_memo:
                missing = [
                    week for week, key in enumerate(week_keys)
                    if key not in self._week_stats_cache
                ]
            else:
                missing = list(range(n_components))
            self.week_stats_hits += n_components - len(missing)
            self.week_stats_misses += len(missing)
            memo_stage.set(
                week_memo_hits=n_components - len(missing),
                week_memo_misses=len(missing),
            )

        if missing:
            for output in self.scenario.vg_outputs:
                self._land_samples(
                    output, batch, matrices[output.alias.lower()], missing, timings
                )
            with tracer.stage("querygen", timings):
                # Parameterized combine: the statement text is constant per
                # scenario (plan-cache friendly); the point binds at execution.
                combine = self.querygen.combine_sql_template()
                aggregate = self.querygen.aggregate_sql()

            with tracer.stage("sql", timings, stats=self.executor.stats):
                self.executor.execute(combine, point)
                result = self.executor.execute(aggregate)

            with tracer.stage("aggregate", timings):
                position = {name: i for i, name in enumerate(result.column_names)}
                for row in result.rows:
                    week = int(row[position["t"]])
                    self._week_stats_cache[week_keys[week]] = tuple(row)

        with tracer.stage("aggregate", timings):
            rows = [self._week_stats_cache[key] for key in week_keys]
            columns = [Column("t", SqlType.INTEGER)]
            for alias in self.scenario.output_aliases:
                columns.append(Column(f"e_{alias}", SqlType.FLOAT))
                columns.append(Column(f"sd_{alias}", SqlType.FLOAT))
            result_set = ResultSet(schema=TableSchema(tuple(columns)), rows=list(rows))
            # Rows carry the original week in column 0; rebuild it in axis order.
            ordered = [
                (week,) + tuple(row[1:]) for week, row in enumerate(rows)
            ]
            result_set.rows = ordered
            statistics = self.aggregator.from_aggregate_result(
                result_set, n_worlds=len(batch)
            )
        return statistics


# -- the round protocol -------------------------------------------------------


@dataclass(frozen=True)
class RoundResult:
    """One completed round of a :class:`PointEvaluator`.

    ``evaluation`` covers the whole world prefix ``[0, worlds_total)`` — not
    just this round's increment — so its statistics are exact for every world
    spent so far, and the final round's evaluation *is* the point's result.
    """

    index: int
    worlds_total: int
    worlds_added: int
    evaluation: PointEvaluation
    max_ci: float
    converged: bool


class PointEvaluator:
    """Resumable round-based evaluation of one parameter point.

    Evaluates the point in world-*prefix* rounds: round *r* covers worlds
    ``[0, boundary_r)`` of the fixed seed sequence, where the boundaries come
    from a :class:`~repro.core.rounds.RoundPlan` (or an explicit ``prefix``
    passed to :meth:`step` — the serve scheduler's budget allocator uses that
    to extend unresolved points with reallocated worlds). Because the engine's
    basis-extend path fresh-samples only the worlds a previous round did not
    cover, a round ladder costs the same fresh sampling as one-shot
    evaluation, and the final full-prefix round is bitwise identical to it.

    Stopping is the round protocol's pure CI rule
    (:func:`repro.core.rounds.ci_converged` applied to each round's
    statistics): once every output series' half-width is at most
    ``target_ci``, the evaluator is converged and the remaining budget is
    never spent. ``target_ci=None`` (default) runs the full ladder.

    ``evaluate`` substitutes the engine's :meth:`ProphetEngine.evaluate_point`
    with any callable of the same signature — the serve scheduler passes one
    that routes each round through its job queue, so the dispatcher and
    resilience ladder apply unchanged per round.

    Alongside each round's (exact, SQL-produced) statistics the evaluator
    Chan-merges each round's fresh sample *increment* into
    :class:`~repro.core.aggregator.MergeableAxisStats` — the bit-exact
    mergeable moments that let tests pin the round decomposition against
    one-shot evaluation (``moments_complete`` goes ``False`` when a round's
    samples were served from a result cache that strips matrices, in which
    case ``moments`` is partial and only ``statistics`` is authoritative).
    """

    def __init__(
        self,
        engine: "ProphetEngine",
        point: Mapping[str, Any],
        *,
        plan: Optional[RoundPlan] = None,
        target_ci: Optional[float] = None,
        z: float = 1.96,
        reuse: bool = True,
        evaluate: Optional[Callable[..., PointEvaluation]] = None,
        tracer: Any = None,
    ) -> None:
        self.engine = engine
        self.point = dict(point)
        self.plan = plan if plan is not None else engine.config.plan()
        self.target_ci = target_ci
        self.z = z
        self.reuse = reuse
        self._evaluate = evaluate if evaluate is not None else engine.evaluate_point
        self.tracer = tracer if tracer is not None else engine.tracer
        self.rounds: list[RoundResult] = []
        self.worlds_spent = 0
        self.converged = False
        self.moments: Optional[MergeableAxisStats] = None
        self.moments_complete = True

    # -- protocol -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Converged, or the plan's fixed world budget is exhausted."""
        return self.converged or self.worlds_spent >= self.plan.n_worlds

    @property
    def result(self) -> Optional[PointEvaluation]:
        """The latest round's full-prefix evaluation (None before round 0)."""
        return self.rounds[-1].evaluation if self.rounds else None

    @property
    def max_ci(self) -> float:
        """The latest round's worst CI half-width (inf before round 0)."""
        return self.rounds[-1].max_ci if self.rounds else float("inf")

    def step(self, prefix: Optional[int] = None) -> RoundResult:
        """Evaluate one more round and return it.

        Without ``prefix`` the next :class:`RoundPlan` boundary is used
        (capped at ``plan.n_worlds``); an explicit ``prefix`` may exceed the
        plan — that is how reallocated budget extends an unresolved point —
        but must strictly grow the world prefix.
        """
        if self.converged:
            raise ScenarioError(
                f"point {self.point!r} already converged at "
                f"{self.worlds_spent} worlds"
            )
        if prefix is None:
            if self.worlds_spent >= self.plan.n_worlds:
                raise ScenarioError(
                    "round ladder exhausted; pass an explicit prefix to "
                    "extend past the plan's world budget"
                )
            prefix = min(
                self.plan.next_boundary(self.worlds_spent), self.plan.n_worlds
            )
        prefix = int(prefix)
        if prefix <= self.worlds_spent:
            raise ScenarioError(
                f"round prefix must exceed the {self.worlds_spent} worlds "
                f"already spent, got {prefix}"
            )
        previous = self.worlds_spent
        index = len(self.rounds)
        with self.tracer.span(
            "round",
            index=index,
            worlds_total=prefix,
            worlds_added=prefix - previous,
        ) as span:
            evaluation = self._evaluate(
                self.point, worlds=range(prefix), reuse=self.reuse
            )
            self._accumulate_moments(evaluation, previous, prefix)
            ci = max_ci_halfwidth(evaluation.statistics, self.z)
            converged = self.target_ci is not None and ci <= self.target_ci
            span.set(max_ci=ci, converged=converged)
        self.worlds_spent = prefix
        self.converged = converged
        completed = RoundResult(
            index=index,
            worlds_total=prefix,
            worlds_added=prefix - previous,
            evaluation=evaluation,
            max_ci=ci,
            converged=converged,
        )
        self.rounds.append(completed)
        return completed

    def run(self) -> PointEvaluation:
        """Step the round ladder until converged or the budget is spent."""
        while not self.finished:
            self.step()
        return self.rounds[-1].evaluation

    # -- mergeable moments --------------------------------------------------

    def _accumulate_moments(
        self, evaluation: PointEvaluation, previous: int, prefix: int
    ) -> None:
        """Chan-merge this round's sample increment ``[previous, prefix)``.

        Result-cache hits ship statistics without sample matrices; such a
        round cannot contribute its increment, so the accumulated moments
        are marked incomplete rather than silently wrong.
        """
        if not evaluation.samples:
            self.moments_complete = False
            return
        increment = {
            alias: np.asarray(matrix)[previous:prefix]
            for alias, matrix in evaluation.samples.items()
        }
        if any(matrix.shape[0] != prefix - previous for matrix in increment.values()):
            self.moments_complete = False
            return
        stats = MergeableAxisStats.from_matrices(increment)
        if self.moments is None:
            self.moments = stats
        else:
            self.moments.merge(stats)

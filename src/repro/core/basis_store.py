"""Tiered bounded basis storage: memory tier + disk spill tier.

The Storage Manager's economy (paper Figure 1, stage 3) is to keep basis
distributions around so later evaluations reuse instead of re-simulate.
Unbounded retention defeats the point at scale — a week-long sweep holds
millions of sample matrices while only a working set is hot. This module
bounds the resident state:

* **memory tier** — an LRU-ordered map capped by basis count
  (``basis_cap``) and by total resident sample bytes (``byte_cap``);
* **disk tier** — entries evicted from memory spill to one ``.npz`` file
  each under ``spill_dir`` (the :mod:`repro.core.persistence` array format,
  args encoded type-preservingly via :mod:`repro.core.argcodec`) and fault
  back transparently on exact or fingerprint-mapped hits;
* **degraded miss** — with no spill directory, eviction drops the samples;
  a later request for them is an ordinary fresh-sampling miss, never an
  error. Unreadable spill files degrade the same way (the tier is an
  optimization layer and fails open, like the serve result cache).

Spill metadata (which worlds an entry covers) stays in memory, so coverage
filtering during candidate selection never faults entries back just to
reject them. A store pointed at a previously used ``spill_dir`` indexes the
existing files on startup, which is what lets shard workers and warm
restarts share one disk tier.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.core.argcodec import decode_args, encode_args
from repro.errors import FingerprintError
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage imports us)
    from repro.core.storage import BasisEntry

#: Spill-file layout version (independent of the persistence archive version).
_SPILL_FORMAT_VERSION = 1

#: A store key: ``(vg_name_lowercase, model_args_tuple)``.
StoreKey = tuple


@dataclass
class BasisTierStats:
    """Counters for one tiered store (CLI ``--stats`` / benchmarks read these)."""

    evictions: int = 0  #: entries pushed out of the memory tier
    spills: int = 0  #: evictions that wrote a new spill file
    faults: int = 0  #: spilled entries loaded back into memory on demand
    dropped: int = 0  #: evictions with no disk tier — degraded to future misses
    failed_faults: int = 0  #: unreadable spill files, degraded to misses

    def as_dict(self) -> dict[str, int]:
        return {
            "evictions": self.evictions,
            "spills": self.spills,
            "faults": self.faults,
            "dropped": self.dropped,
            "failed_faults": self.failed_faults,
        }


@dataclass(frozen=True)
class SpillRecord:
    """In-memory index entry for one spilled basis."""

    path: str
    worlds: tuple[int, ...]
    n_bytes: int


class TieredBasisStore:
    """Bounded LRU memory tier over an optional npz disk tier."""

    def __init__(
        self,
        basis_cap: Optional[int] = None,
        byte_cap: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        if basis_cap is not None and basis_cap < 1:
            raise FingerprintError(f"basis_cap must be >= 1, got {basis_cap}")
        if byte_cap is not None and byte_cap < 1:
            raise FingerprintError(f"byte_cap must be >= 1, got {byte_cap}")
        self.basis_cap = basis_cap
        self.byte_cap = byte_cap
        self.spill_dir = str(spill_dir) if spill_dir is not None else None
        #: Entries in insertion order. Enumeration (candidate ranking,
        #: snapshots, persistence) reads this, matching the plain-dict
        #: store this tier replaced — recency must not perturb tie-breaks.
        self._memory: dict[StoreKey, BasisEntry] = {}
        #: The same keys in recency order (LRU first); eviction reads this.
        self._recency: "OrderedDict[StoreKey, None]" = OrderedDict()
        self._spilled: dict[StoreKey, SpillRecord] = {}
        #: Keys whose memory copy is byte-identical to their spill file
        #: (faulted back, not modified since) — eviction skips the rewrite.
        self._clean: set[StoreKey] = set()
        #: Keys adopted from a pre-existing spill dir: foreign content whose
        #: world seeds and shape must be validated before serving (see
        #: StorageManager._adoption_valid / adopted_seeds_valid); entries
        #: this process stored are trusted and skip those checks.
        self._adopted: set[StoreKey] = set()
        #: Keys whose samples depend on shard geometry (cross-shard snapshot
        #: reuse). They serve normally in this process but never reach disk
        #: — not the spill tier, not persistence — because a later run
        #: cannot tell them from exact samples (their world seeds are the
        #: authentic ones). Taint is sticky per key: a put() does not clear
        #: it, so merges and overwrites stay conservatively quarantined.
        self._tainted: set[StoreKey] = set()
        self._resident_bytes = 0
        self.stats = BasisTierStats()
        #: Observability: replaced by the engine's ``set_tracer``; spill
        #: writes and disk faults show up as "spill" / "fault" spans.
        self.tracer = NULL_TRACER
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
            self._index_spill_dir()

    # -- observability -----------------------------------------------------

    @property
    def resident_count(self) -> int:
        """Entries currently held in the memory tier."""
        return len(self._memory)

    @property
    def resident_bytes(self) -> int:
        """Total sample bytes currently held in the memory tier."""
        return self._resident_bytes

    @property
    def spilled_count(self) -> int:
        """Entries currently reachable only through the disk tier."""
        return sum(1 for key in self._spilled if key not in self._memory)

    def __len__(self) -> int:
        """Distinct known bases across both tiers."""
        return len(self._memory) + self.spilled_count

    # -- read --------------------------------------------------------------

    def get(self, key: StoreKey) -> Optional["BasisEntry"]:
        """Fetch an entry, faulting it back from disk if it was spilled.

        Returns ``None`` for unknown keys and for spilled entries whose file
        is gone or unreadable (those degrade to misses, never errors).
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._recency.move_to_end(key)
            return entry
        record = self._spilled.get(key)
        if record is None:
            return None
        with self.tracer.span(
            "fault", vg=str(key[0]), bytes=record.n_bytes
        ) as span:
            entry = self._read_spill(record)
            if entry is None:
                del self._spilled[key]
                self.stats.failed_faults += 1
                span.set(failed=True)
                return None
        self.stats.faults += 1
        self._insert(key, entry, clean=True)
        return entry

    def peek_worlds(self, key: StoreKey) -> Optional[tuple[int, ...]]:
        """Which worlds ``key`` covers, from either tier, without faulting."""
        entry = self._memory.get(key)
        if entry is not None:
            return entry.worlds
        record = self._spilled.get(key)
        return record.worlds if record is not None else None

    def keys(self) -> tuple[StoreKey, ...]:
        """All known keys: memory tier (insertion order), then spilled-only."""
        memory = tuple(self._memory)
        spilled = tuple(k for k in self._spilled if k not in self._memory)
        return memory + spilled

    def memory_items(self) -> tuple[tuple[StoreKey, "BasisEntry"], ...]:
        """The memory tier's entries in insertion order (recency untouched)."""
        return tuple(self._memory.items())

    def is_adopted(self, key: StoreKey) -> bool:
        """Was this key's content adopted from a pre-existing spill dir?"""
        return key in self._adopted

    def taint(self, key: StoreKey) -> None:
        """Mark a key's samples as shard-geometry-dependent (sticky)."""
        self._tainted.add(key)

    def is_tainted(self, key: StoreKey) -> bool:
        return key in self._tainted

    def items(self) -> Iterator[tuple[StoreKey, "BasisEntry"]]:
        """Iterate every readable, persistable entry.

        Spilled entries are read without promotion; tainted
        (geometry-dependent) entries are skipped — persistence must never
        carry them into another run as exact samples.
        """
        for key, entry in self._memory.items():
            if key not in self._tainted:
                yield key, entry
        for key, record in self._spilled.items():
            if key in self._memory or key in self._tainted:
                continue
            entry = self._read_spill(record)
            if entry is not None:
                yield key, entry

    # -- write -------------------------------------------------------------

    def put(self, key: StoreKey, entry: "BasisEntry") -> None:
        """Insert or replace an entry; evicts LRU overflow past the caps."""
        # The new content supersedes any spill file for this key, and
        # content this process produced is trusted (no seed validation).
        self._spilled.pop(key, None)
        self._adopted.discard(key)
        self._insert(key, entry, clean=False)

    def discard(self, key: StoreKey) -> None:
        """Forget one key entirely (both tiers; any spill file stays on disk).

        Used to expel adopted entries that failed seed validation — they
        can never serve this store's engine, and leaving them would fault
        the same unusable matrix from disk on every acquire.
        """
        entry = self._memory.pop(key, None)
        if entry is not None:
            self._resident_bytes -= entry.samples.nbytes
        self._recency.pop(key, None)
        self._spilled.pop(key, None)
        self._clean.discard(key)
        self._adopted.discard(key)
        self._tainted.discard(key)

    def clear(self) -> None:
        """Forget both tiers (spill files are left on disk) and counters."""
        self._memory.clear()
        self._recency.clear()
        self._spilled.clear()
        self._clean.clear()
        self._adopted.clear()
        self._tainted.clear()
        self._resident_bytes = 0
        self.stats = BasisTierStats()

    # -- internals ---------------------------------------------------------

    def _insert(self, key: StoreKey, entry: "BasisEntry", *, clean: bool) -> None:
        old = self._memory.get(key)
        if old is not None:
            # In-place replacement keeps the key's enumeration position,
            # exactly like assignment into the plain dict this replaces.
            self._resident_bytes -= old.samples.nbytes
        self._memory[key] = entry
        self._recency[key] = None
        self._recency.move_to_end(key)
        self._resident_bytes += entry.samples.nbytes
        if clean:
            self._clean.add(key)
        else:
            self._clean.discard(key)
        self._shrink()

    def _over_caps(self) -> bool:
        if self.basis_cap is not None and len(self._memory) > self.basis_cap:
            return True
        if self.byte_cap is not None and self._resident_bytes > self.byte_cap:
            return True
        return False

    def _shrink(self) -> None:
        while self._memory and self._over_caps():
            key, _ = self._recency.popitem(last=False)
            entry = self._memory.pop(key)
            self._resident_bytes -= entry.samples.nbytes
            self.stats.evictions += 1
            if key in self._tainted:
                # Geometry-dependent samples must never reach disk, where a
                # later run would adopt them as exact.
                self._spilled.pop(key, None)
                self.stats.dropped += 1
            elif key in self._clean and key in self._spilled:
                pass  # disk copy is current; nothing to write
            elif self.spill_dir is not None:
                try:
                    with self.tracer.span(
                        "spill", vg=str(key[0]), bytes=entry.samples.nbytes
                    ):
                        self._spilled[key] = self._write_spill(key, entry)
                    self.stats.spills += 1
                except Exception:
                    # Disk full, dir gone, unencodable args: the write path
                    # fails open exactly like the read path — the entry is
                    # dropped and degrades to a future fresh miss.
                    self._spilled.pop(key, None)
                    self.stats.dropped += 1
            else:
                self.stats.dropped += 1
            self._clean.discard(key)

    # -- disk tier ---------------------------------------------------------

    def _spill_path(self, key: StoreKey) -> str:
        vg_name, args = key
        digest = hashlib.sha256(
            json.dumps([vg_name, encode_args(args)]).encode("utf-8")
        ).hexdigest()
        return os.path.join(self.spill_dir, f"basis_{digest[:40]}.npz")

    def _write_spill(self, key: StoreKey, entry: "BasisEntry") -> SpillRecord:
        header = {
            "format_version": _SPILL_FORMAT_VERSION,
            "vg_name": entry.vg_name,
            "args": encode_args(entry.args),
            # Recorded so startup indexing never decompresses the samples.
            "n_bytes": int(entry.samples.nbytes),
        }
        path = self._spill_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    samples=entry.samples,
                    worlds=np.asarray(entry.worlds, dtype=np.int64),
                    seeds=np.asarray(entry.seeds, dtype=np.uint64),
                    header=np.frombuffer(
                        json.dumps(header).encode("utf-8"), dtype=np.uint8
                    ),
                )
            os.replace(tmp, path)
        except BaseException:
            # A failed write (disk full) must not leave a partial tmp file
            # consuming exactly the space that is already scarce.
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return SpillRecord(
            path=path, worlds=entry.worlds, n_bytes=entry.samples.nbytes
        )

    def _read_spill(self, record: SpillRecord) -> Optional["BasisEntry"]:
        from repro.core.storage import BasisEntry

        try:
            with np.load(record.path) as archive:
                header = json.loads(bytes(archive["header"]).decode("utf-8"))
                if header.get("format_version") != _SPILL_FORMAT_VERSION:
                    return None
                return BasisEntry(
                    vg_name=str(header["vg_name"]),
                    args=decode_args(header["args"]),
                    samples=np.asarray(archive["samples"], dtype=float),
                    worlds=tuple(int(w) for w in archive["worlds"]),
                    seeds=tuple(int(s) for s in archive["seeds"]),
                )
        except Exception:
            return None

    def _index_spill_dir(self) -> None:
        """Adopt spill files a previous run (or another process) left behind."""
        for name in sorted(os.listdir(self.spill_dir)):
            if not (name.startswith("basis_") and name.endswith(".npz")):
                continue
            path = os.path.join(self.spill_dir, name)
            try:
                with np.load(path) as archive:
                    header = json.loads(bytes(archive["header"]).decode("utf-8"))
                    if header.get("format_version") != _SPILL_FORMAT_VERSION:
                        continue
                    key = (
                        str(header["vg_name"]).lower(),
                        decode_args(header["args"]),
                    )
                    worlds = tuple(int(w) for w in archive["worlds"])
                    # The header carries the sample size, so indexing only
                    # touches the two tiny members, never the matrix.
                    n_bytes = int(header["n_bytes"])
            except Exception:
                continue  # unreadable file: ignore, it would fail open anyway
            self._spilled[key] = SpillRecord(
                path=path, worlds=worlds, n_bytes=n_bytes
            )
            self._adopted.add(key)


__all__ = [
    "BasisTierStats",
    "SpillRecord",
    "TieredBasisStore",
]

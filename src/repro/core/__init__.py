"""Fuzzy Prophet core: parameters, scenarios, the evaluation cycle,
fingerprinting, and the online/offline exploration modes."""

from repro.core.aggregator import (
    AxisStatistics,
    ExactSum,
    MergeableAxisStats,
    MergeableMoments,
    ResultAggregator,
    SeriesStats,
    WelfordAccumulator,
    error_against_reference,
)
from repro.core.engine import (
    PointEvaluation,
    PointEvaluator,
    ProphetConfig,
    ProphetEngine,
    RoundResult,
    StageTimings,
)
from repro.core.guide import GridGuide, PriorityGuide
from repro.core.instance import InstanceBatch, WorldInstance
from repro.core.rounds import (
    ConvergenceTracker,
    RoundPlan,
    ci_converged,
    max_ci_halfwidth,
)
from repro.core.offline import (
    ConstraintEvaluator,
    OfflineOptimizer,
    OptimizationResult,
    PointRecord,
    ReuseSummary,
)
from repro.core.online import GraphView, InteractionLog, OnlineSession
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.querygen import QueryGenerator, substitute
from repro.core.scenario import (
    DerivedOutput,
    GraphSeries,
    GraphSpec,
    OptimizeObjective,
    OptimizeSpec,
    Scenario,
    VGOutput,
)
from repro.core.persistence import load_bases, save_bases
from repro.core.risk import (
    RiskAnalyzer,
    RiskSummary,
    exceedance_probability,
    expected_shortfall,
    quantile_series,
    shortfall_probability,
)
from repro.core.storage import BasisEntry, ReuseReport, StorageManager


def __getattr__(name: str):
    """Legacy spelling ``repro.core.RefinementPlan`` -> :class:`RoundPlan`."""
    if name == "RefinementPlan":
        import warnings

        warnings.warn(
            "repro.core.RefinementPlan is deprecated; use "
            "repro.core.RoundPlan (same fields and pass semantics)",
            DeprecationWarning,
            stacklevel=2,
        )
        return RoundPlan
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


__all__ = [
    "Parameter",
    "ParameterSpace",
    "WorldInstance",
    "InstanceBatch",
    "Scenario",
    "VGOutput",
    "DerivedOutput",
    "GraphSpec",
    "GraphSeries",
    "OptimizeSpec",
    "OptimizeObjective",
    "GridGuide",
    "PriorityGuide",
    "RoundPlan",
    "RefinementPlan",
    "ci_converged",
    "max_ci_halfwidth",
    "QueryGenerator",
    "substitute",
    "StorageManager",
    "BasisEntry",
    "ReuseReport",
    "ResultAggregator",
    "AxisStatistics",
    "SeriesStats",
    "ConvergenceTracker",
    "ExactSum",
    "MergeableMoments",
    "MergeableAxisStats",
    "WelfordAccumulator",
    "error_against_reference",
    "ProphetEngine",
    "ProphetConfig",
    "PointEvaluation",
    "PointEvaluator",
    "RoundResult",
    "StageTimings",
    "OnlineSession",
    "GraphView",
    "InteractionLog",
    "OfflineOptimizer",
    "OptimizationResult",
    "PointRecord",
    "ReuseSummary",
    "ConstraintEvaluator",
    "RiskAnalyzer",
    "RiskSummary",
    "quantile_series",
    "exceedance_probability",
    "shortfall_probability",
    "expected_shortfall",
    "save_bases",
    "load_bases",
]

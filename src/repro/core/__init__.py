"""Fuzzy Prophet core: parameters, scenarios, the evaluation cycle,
fingerprinting, and the online/offline exploration modes."""

from repro.core.aggregator import (
    AxisStatistics,
    ConvergenceTracker,
    ExactSum,
    MergeableAxisStats,
    MergeableMoments,
    ResultAggregator,
    SeriesStats,
    WelfordAccumulator,
    error_against_reference,
)
from repro.core.engine import (
    PointEvaluation,
    ProphetConfig,
    ProphetEngine,
    StageTimings,
)
from repro.core.guide import GridGuide, PriorityGuide, RefinementPlan
from repro.core.instance import InstanceBatch, WorldInstance
from repro.core.offline import (
    ConstraintEvaluator,
    OfflineOptimizer,
    OptimizationResult,
    PointRecord,
    ReuseSummary,
)
from repro.core.online import GraphView, InteractionLog, OnlineSession
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.querygen import QueryGenerator, substitute
from repro.core.scenario import (
    DerivedOutput,
    GraphSeries,
    GraphSpec,
    OptimizeObjective,
    OptimizeSpec,
    Scenario,
    VGOutput,
)
from repro.core.persistence import load_bases, save_bases
from repro.core.risk import (
    RiskAnalyzer,
    RiskSummary,
    exceedance_probability,
    expected_shortfall,
    quantile_series,
    shortfall_probability,
)
from repro.core.storage import BasisEntry, ReuseReport, StorageManager

__all__ = [
    "Parameter",
    "ParameterSpace",
    "WorldInstance",
    "InstanceBatch",
    "Scenario",
    "VGOutput",
    "DerivedOutput",
    "GraphSpec",
    "GraphSeries",
    "OptimizeSpec",
    "OptimizeObjective",
    "GridGuide",
    "PriorityGuide",
    "RefinementPlan",
    "QueryGenerator",
    "substitute",
    "StorageManager",
    "BasisEntry",
    "ReuseReport",
    "ResultAggregator",
    "AxisStatistics",
    "SeriesStats",
    "ConvergenceTracker",
    "ExactSum",
    "MergeableMoments",
    "MergeableAxisStats",
    "WelfordAccumulator",
    "error_against_reference",
    "ProphetEngine",
    "ProphetConfig",
    "PointEvaluation",
    "StageTimings",
    "OnlineSession",
    "GraphView",
    "InteractionLog",
    "OfflineOptimizer",
    "OptimizationResult",
    "PointRecord",
    "ReuseSummary",
    "ConstraintEvaluator",
    "RiskAnalyzer",
    "RiskSummary",
    "quantile_series",
    "exceedance_probability",
    "shortfall_probability",
    "expected_shortfall",
    "save_bases",
    "load_bases",
]

"""The Query Generator (paper Figure 1, stage 2).

Consumes instance batches and produces **pure SQL text** — no Python objects
cross this boundary; the SQL engine parses and executes exactly what a
standard relational server would. Three query families:

* *sampling* — land each Monte Carlo world of each VG model into a samples
  table ``(world, t, value)`` via the table form of the VG-Function;
* *combine* — join the per-model samples tables on ``(world, t)`` and
  evaluate the scenario's derived expressions, materializing the results
  table (``SELECT ... INTO results`` in Figure 2);
* *aggregate* — per-axis-value expectations and standard deviations over
  worlds (what the Result Aggregator and the online graph read).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ScenarioError
from repro.core.instance import InstanceBatch
from repro.core.scenario import Scenario, VGOutput
from repro.sqldb.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    Variable,
)
from repro.sqldb.pdbext import BATCH_FORM_SUFFIX, TABLE_FORM_SUFFIX


def substitute(expression: Expression, bindings: Mapping[str, Expression]) -> Expression:
    """Replace ``@variables`` by expressions (usually literals or columns)."""
    if isinstance(expression, Variable):
        replacement = bindings.get(expression.name.lower())
        return replacement if replacement is not None else expression
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.operator, substitute(expression.operand, bindings))
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.operator,
            substitute(expression.left, bindings),
            substitute(expression.right, bindings),
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            name=expression.name,
            args=tuple(substitute(arg, bindings) for arg in expression.args),
            star=expression.star,
            distinct=expression.distinct,
        )
    if isinstance(expression, CaseWhen):
        return CaseWhen(
            branches=tuple(
                (substitute(c, bindings), substitute(v, bindings))
                for c, v in expression.branches
            ),
            otherwise=(
                None
                if expression.otherwise is None
                else substitute(expression.otherwise, bindings)
            ),
        )
    if isinstance(expression, Cast):
        return Cast(substitute(expression.operand, bindings), expression.type_name)
    if isinstance(expression, InList):
        return InList(
            operand=substitute(expression.operand, bindings),
            items=tuple(substitute(i, bindings) for i in expression.items),
            negated=expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            operand=substitute(expression.operand, bindings),
            low=substitute(expression.low, bindings),
            high=substitute(expression.high, bindings),
            negated=expression.negated,
        )
    if isinstance(expression, IsNull):
        return IsNull(substitute(expression.operand, bindings), expression.negated)
    if isinstance(expression, Like):
        return Like(
            operand=substitute(expression.operand, bindings),
            pattern=substitute(expression.pattern, bindings),
            negated=expression.negated,
        )
    return expression


class QueryGenerator:
    """Generates the pure-SQL programs for one scenario."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    # -- table naming -----------------------------------------------------------

    def samples_table(self, alias: str) -> str:
        return f"fp_samples_{alias.lower()}"

    # -- sampling queries -----------------------------------------------------------

    def create_samples_table_sql(self, alias: str) -> str:
        return (
            f"CREATE TABLE {self.samples_table(alias)} "
            f"(world INTEGER NOT NULL, t INTEGER NOT NULL, value FLOAT NOT NULL)"
        )

    def drop_samples_table_sql(self, alias: str) -> str:
        return f"DROP TABLE IF EXISTS {self.samples_table(alias)}"

    def insert_world_sql(
        self, output: VGOutput, world: int, seed: int, point: Mapping[str, Any]
    ) -> str:
        """One world of one VG model: INSERT ... SELECT FROM the table form."""
        arg_values = output.model_arg_values(point)
        rendered_args = ", ".join(
            [Literal(seed).render()] + [Literal(v).render() for v in arg_values]
        )
        return (
            f"INSERT INTO {self.samples_table(output.alias)} (world, t, value) "
            f"SELECT {Literal(world).render()}, t, value "
            f"FROM {output.vg_name}{TABLE_FORM_SUFFIX}({rendered_args})"
        )

    def insert_world_template(self, output: VGOutput) -> str:
        """Parameterized form of :meth:`insert_world_sql`.

        World identity arrives through the reserved ``@_world``/``@_seed``
        variables and model arguments stay as their ``@parameter``
        expressions, all bound at execute time — so the statement text is
        constant per scenario and the executor's plan cache parses it once
        for the entire sweep instead of once per world.
        """
        rendered_args = ", ".join(
            ["@_seed"] + [arg.render() for arg in output.model_args]
        )
        return (
            f"INSERT INTO {self.samples_table(output.alias)} (world, t, value) "
            f"SELECT @_world, t, value "
            f"FROM {output.vg_name}{TABLE_FORM_SUFFIX}({rendered_args})"
        )

    def world_variables(
        self, world: int, seed: int, point: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Variable bindings for one execution of the insert template."""
        variables = {str(name).lower(): value for name, value in point.items()}
        variables["_world"] = world
        variables["_seed"] = seed
        return variables

    def insert_batch_template(self, output: VGOutput) -> str:
        """One statement that lands an entire world slice of one VG model.

        The batch table form receives the whole slice through the reserved
        ``@_worlds``/``@_seeds`` sequence variables (model arguments stay as
        their ``@parameter`` expressions), so the statement text is constant
        per scenario — one plan-cache entry serves every slice size — and
        one execution replaces the per-world loop over
        :meth:`insert_world_template`.
        """
        rendered_args = ", ".join(
            ["@_worlds", "@_seeds"] + [arg.render() for arg in output.model_args]
        )
        return (
            f"INSERT INTO {self.samples_table(output.alias)} (world, t, value) "
            f"SELECT world, t, value "
            f"FROM {output.vg_name}{BATCH_FORM_SUFFIX}({rendered_args})"
        )

    def batch_variables(
        self,
        worlds: Sequence[int],
        seeds: Sequence[int],
        point: Mapping[str, Any],
    ) -> dict[str, Any]:
        """Variable bindings for one execution of the batch insert template."""
        variables = {str(name).lower(): value for name, value in point.items()}
        variables["_worlds"] = tuple(worlds)
        variables["_seeds"] = tuple(seeds)
        return variables

    def sampling_script(self, output: VGOutput, batch: InstanceBatch) -> list[str]:
        """The full sampling program for one model over one batch."""
        statements = [
            self.drop_samples_table_sql(output.alias),
            self.create_samples_table_sql(output.alias),
        ]
        point = batch.point_dict
        for instance in batch:
            statements.append(
                self.insert_world_sql(output, instance.world, instance.seed, point)
            )
        return statements

    # -- combine query -----------------------------------------------------------

    def combine_sql(self, point: Mapping[str, Any]) -> str:
        """Join model samples, compute derived outputs, land the results table.

        Parameter references inside derived expressions become literals of
        the current point; the axis parameter becomes the ``t`` column.
        """
        return self._combine_sql(self._point_bindings(point))

    def combine_sql_template(self) -> str:
        """Parameterized form of :meth:`combine_sql`.

        Only the axis parameter is substituted (it becomes the ``t``
        column); every other ``@parameter`` stays in the text and is bound
        from the point at execute time, keeping the statement text constant
        per scenario for the executor's plan cache.
        """
        bindings: dict[str, Expression] = {self.scenario.axis: ColumnRef("t")}
        return self._combine_sql(bindings)

    def _combine_sql(self, bindings: Mapping[str, Expression]) -> str:
        scenario = self.scenario
        vg_outputs = scenario.vg_outputs
        if not vg_outputs:
            raise ScenarioError("scenario has no VG outputs to combine")

        first = vg_outputs[0]
        first_label = f"s0"
        select_items = [
            f"{first_label}.world AS world",
            f"{first_label}.t AS t",
            f"{first_label}.value AS {first.alias}",
        ]
        joins: list[str] = []
        for index, output in enumerate(vg_outputs[1:], start=1):
            label = f"s{index}"
            select_items.append(f"{label}.value AS {output.alias}")
            joins.append(
                f"JOIN {self.samples_table(output.alias)} {label} "
                f"ON {first_label}.world = {label}.world AND {first_label}.t = {label}.t"
            )

        for derived in scenario.derived_outputs:
            rewritten = substitute(derived.expression, bindings)
            select_items.append(f"{rewritten.render()} AS {derived.alias}")

        clauses = [
            f"SELECT {', '.join(select_items)}",
            f"INTO {scenario.results_table}",
            f"FROM {self.samples_table(first.alias)} {first_label}",
        ]
        clauses.extend(joins)
        return " ".join(clauses)

    # -- aggregate queries ------------------------------------------------------

    def aggregate_sql(self) -> str:
        """Per-axis-value statistics of every output over worlds."""
        pieces = ["SELECT t"]
        selects = []
        for alias in self.scenario.output_aliases:
            selects.append(f"AVG({alias}) AS e_{alias}")
            selects.append(f"STDEV({alias}) AS sd_{alias}")
        pieces.append(", " + ", ".join(selects))
        pieces.append(
            f" FROM {self.scenario.results_table} GROUP BY t ORDER BY t"
        )
        return "".join(pieces)

    def count_sql(self) -> str:
        return f"SELECT COUNT(*) AS n FROM {self.scenario.results_table}"

    def _point_bindings(self, point: Mapping[str, Any]) -> dict[str, Expression]:
        bindings: dict[str, Expression] = {
            str(name).lower(): Literal(value) for name, value in point.items()
        }
        bindings[self.scenario.axis] = ColumnRef("t")
        return bindings

"""Fingerprinting: the paper's core contribution.

* :class:`FingerprintSpec`, :class:`Fingerprint`, :func:`compute_fingerprint`
* :class:`CorrelationPolicy`, :func:`correlate`, :class:`ComponentMap`
* :func:`remap_samples`, :func:`fill_components`
* Markov analysis: :func:`analyze_markov`, :func:`simulate_with_shortcuts`
* :class:`FingerprintRegistry` — the engine's index of explored points
"""

from repro.core.fingerprint.correlation import (
    ComponentMap,
    CorrelationPolicy,
    CorrelationResult,
    MapKind,
    correlate,
    match_component,
)
from repro.core.fingerprint.fingerprint import (
    Fingerprint,
    FingerprintSpec,
    compute_fingerprint,
)
from repro.core.fingerprint.mapping import (
    RemapResult,
    fill_components,
    remap_error,
    remap_samples,
)
from repro.core.fingerprint.markov import (
    MarkovAnalysis,
    Region,
    StepModel,
    analyze_markov,
    simulate_with_shortcuts,
)
from repro.core.fingerprint.registry import (
    FingerprintRegistry,
    MappingRecord,
    MatchOutcome,
)

__all__ = [
    "Fingerprint",
    "FingerprintSpec",
    "compute_fingerprint",
    "ComponentMap",
    "MapKind",
    "CorrelationPolicy",
    "CorrelationResult",
    "correlate",
    "match_component",
    "RemapResult",
    "remap_samples",
    "fill_components",
    "remap_error",
    "MarkovAnalysis",
    "Region",
    "StepModel",
    "analyze_markov",
    "simulate_with_shortcuts",
    "FingerprintRegistry",
    "MappingRecord",
    "MatchOutcome",
]

"""Fingerprints of VG-Function parameterizations.

Paper §2: *"the fingerprint of a parameterized stochastic function is simply
a sequence of its outputs under a fixed sequence of random inputs (i.e.,
seed of its pseudorandom number generator). The use of a fixed set of random
seeds ensures a deterministic relationship between correlated outputs."*

A :class:`Fingerprint` is therefore a ``k x n_components`` matrix: row ``i``
is the VG-Function's full output vector under probe seed ``i``. Comparing the
columns of two fingerprints (same function, different parameter values)
reveals per-component relationships that, once detected, transfer to the
Monte Carlo sample matrices because world seeds are fixed too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import FingerprintError
from repro.vg.base import VGFunction
from repro.vg.seeds import fingerprint_seeds


@dataclass(frozen=True)
class FingerprintSpec:
    """Configuration of the fingerprinting probe.

    ``n_seeds`` — how many fixed probe seeds (the paper's "fixed sequence of
    random inputs"); more seeds make correlation detection more reliable but
    each probe costs one VG invocation.
    ``base_seed`` — root of the fixed probe-seed sequence; all fingerprints
    in one engine share it (fingerprints from different bases are not
    comparable).
    """

    n_seeds: int = 8
    base_seed: int = 20110612  # SIGMOD'11 demo date

    def __post_init__(self) -> None:
        if self.n_seeds < 2:
            raise FingerprintError(
                f"fingerprints need >= 2 probe seeds to see variation, got {self.n_seeds}"
            )

    @property
    def seeds(self) -> tuple[int, ...]:
        return fingerprint_seeds(self.base_seed, self.n_seeds)


@dataclass(frozen=True)
class Fingerprint:
    """The fingerprint of one ``(vg, model_args)`` parameterization."""

    vg_name: str
    args: tuple[Any, ...]
    matrix: np.ndarray  # shape (n_seeds, n_components)
    spec: FingerprintSpec

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise FingerprintError(f"fingerprint matrix must be 2-D, got {self.matrix.ndim}-D")
        if self.matrix.shape[0] != self.spec.n_seeds:
            raise FingerprintError(
                f"fingerprint has {self.matrix.shape[0]} rows, spec wants {self.spec.n_seeds}"
            )

    @property
    def n_components(self) -> int:
        return int(self.matrix.shape[1])

    def column(self, component: int) -> np.ndarray:
        return self.matrix[:, component]

    def comparable_with(self, other: "Fingerprint") -> bool:
        """Fingerprints compare only within one function and probe spec."""
        return (
            self.vg_name == other.vg_name
            and self.spec == other.spec
            and self.n_components == other.n_components
        )


def compute_fingerprint(
    function: VGFunction, args: tuple[Any, ...], spec: FingerprintSpec
) -> Fingerprint:
    """Probe ``function`` at ``args`` under the spec's fixed seeds.

    Costs ``spec.n_seeds`` VG invocations (cached within the function, so
    re-probing the same parameterization is free).
    """
    rows = [function.invoke(seed, tuple(args)) for seed in spec.seeds]
    matrix = np.vstack(rows)
    return Fingerprint(vg_name=function.name, args=tuple(args), matrix=matrix, spec=spec)

"""Applying detected correlations to stored sample matrices.

Once :func:`~repro.core.fingerprint.correlation.correlate` has produced
per-component maps from a basis parameterization to a target one, this module
re-maps the basis's Monte Carlo sample matrix (``n_worlds x n_components``)
into an estimate of the target's — filling mapped components by transform and
reporting which components still need real simulation.

Soundness argument (paper §2): the probe seeds and the world seeds are both
*fixed* across parameter points, and VG-Functions draw their randomness from
seed-only streams. A relationship that holds for every probe seed is a
functional identity in the underlying random events, so it holds for the
world seeds too. Detection error is bounded by the correlation tolerance; the
``bench_ablation_tolerance`` benchmark quantifies the residual risk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FingerprintError
from repro.core.fingerprint.correlation import CorrelationResult


@dataclass(frozen=True)
class RemapResult:
    """Outcome of remapping a basis sample matrix toward a target point.

    ``samples`` has mapped components filled and unmapped components NaN;
    callers overwrite the NaN columns with freshly simulated values.
    """

    samples: np.ndarray
    mapped_components: tuple[int, ...]
    unmapped_components: tuple[int, ...]

    @property
    def complete(self) -> bool:
        return not self.unmapped_components


def remap_samples(basis_samples: np.ndarray, correlation: CorrelationResult) -> RemapResult:
    """Transform ``basis_samples`` through the per-component maps."""
    if basis_samples.ndim != 2:
        raise FingerprintError(
            f"sample matrix must be 2-D (worlds x components), got {basis_samples.ndim}-D"
        )
    if basis_samples.shape[1] != correlation.n_components:
        raise FingerprintError(
            f"sample matrix has {basis_samples.shape[1]} components, "
            f"correlation has {correlation.n_components}"
        )
    target = np.full_like(basis_samples, np.nan, dtype=float)
    for component, component_map in enumerate(correlation.maps):
        if component_map is not None:
            target[:, component] = component_map.apply(basis_samples[:, component])
    return RemapResult(
        samples=target,
        mapped_components=correlation.mapped_components,
        unmapped_components=correlation.unmapped_components,
    )


def fill_components(
    samples: np.ndarray, components: tuple[int, ...], fresh_columns: np.ndarray
) -> np.ndarray:
    """Overwrite ``components`` of ``samples`` with freshly simulated columns.

    ``fresh_columns`` must be ``n_worlds x len(components)``.
    """
    if fresh_columns.shape != (samples.shape[0], len(components)):
        raise FingerprintError(
            f"fresh columns shape {fresh_columns.shape} != "
            f"({samples.shape[0]}, {len(components)})"
        )
    filled = samples.copy()
    for position, component in enumerate(components):
        filled[:, component] = fresh_columns[:, position]
    return filled


def remap_error(
    exact_samples: np.ndarray, remapped_samples: np.ndarray, components: tuple[int, ...]
) -> float:
    """RMS error of remapped vs exactly simulated values on ``components``.

    Used by the tolerance-ablation benchmark to quantify how much accuracy a
    loose tolerance costs.
    """
    if not components:
        return 0.0
    index = np.asarray(components, dtype=int)
    difference = exact_samples[:, index] - remapped_samples[:, index]
    return float(np.sqrt(np.mean(np.square(difference))))

"""Markovian-structure detection and shortcut estimators.

Paper §2: *"when a simulation is Markovian ... outputs of successive steps
often remain strongly correlated. This is particularly true for many
processes of interest that are built around discontinuities, with discrete
events occurring at random points in time ... Fingerprints can identify such
Markovian dependencies, enabling automated generation of simple
non-Markovian estimators. These estimators, valid for regions of the Markov
chain, allow Fuzzy Prophet to skip the corresponding portions of the
simulation."*

Implementation: for a :class:`~repro.vg.base.SteppedVGFunction` we collect
state traces under the fixed probe seeds and fit, per step ``t``, an affine
relation ``state[t] ~ a_t * state[t-1] + b_t`` across seeds. Steps whose
residual is below tolerance are *predictable*; maximal runs of predictable
steps form :class:`Region` estimators whose composed affine map jumps the
chain from the region's entry state to its exit state in O(1). Steps inside
event windows (hardware arrivals, failure bursts) have seed-dependent
residuals and stay simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import FingerprintError
from repro.core.fingerprint.fingerprint import FingerprintSpec
from repro.vg.base import SteppedVGFunction


@dataclass(frozen=True)
class StepModel:
    """Fitted per-step relation ``state[t] = scale * state[t-1] + offset``."""

    step: int
    scale: float
    offset: float
    residual: float


@dataclass(frozen=True)
class Region:
    """A maximal run of predictable steps ``[start, stop]`` (inclusive).

    ``scale``/``offset`` compose the per-step affine maps: entering the
    region with state ``s`` exits with ``scale * s + offset``.
    """

    start: int
    stop: int
    scale: float
    offset: float

    @property
    def length(self) -> int:
        return self.stop - self.start + 1

    def jump(self, state: float) -> float:
        return self.scale * state + self.offset


@dataclass(frozen=True)
class MarkovAnalysis:
    """Full analysis of one stepped parameterization."""

    vg_name: str
    args: tuple[Any, ...]
    step_models: tuple[StepModel, ...]
    regions: tuple[Region, ...]
    n_steps: int

    @property
    def skippable_steps(self) -> int:
        return sum(region.length for region in self.regions)

    @property
    def skippable_fraction(self) -> float:
        if self.n_steps == 0:
            return 0.0
        return self.skippable_steps / self.n_steps


def analyze_markov(
    function: SteppedVGFunction,
    args: tuple[Any, ...],
    spec: FingerprintSpec,
    tolerance: float = 1e-6,
    min_region_length: int = 2,
) -> MarkovAnalysis:
    """Detect predictable regions of ``function`` at ``args``.

    Costs ``spec.n_seeds`` trace simulations (these are fingerprint probes —
    world evaluations are what the resulting estimators save).
    """
    if tolerance < 0:
        raise FingerprintError(f"tolerance must be >= 0, got {tolerance}")
    traces = [function.trace(seed, tuple(args))[0] for seed in spec.seeds]
    states = np.vstack(traces)  # (n_seeds, n_steps)
    n_steps = states.shape[1]

    step_models: list[StepModel] = []
    predictable = np.zeros(n_steps, dtype=bool)
    for t in range(1, n_steps):
        previous = states[:, t - 1]
        current = states[:, t]
        model = _fit_step(t, previous, current)
        step_models.append(model)
        scale_reference = max(float(np.std(previous)), float(np.std(current)), 1e-9)
        predictable[t] = model.residual <= tolerance * max(scale_reference, 1.0)

    regions = _build_regions(step_models, predictable, min_region_length)
    return MarkovAnalysis(
        vg_name=function.name,
        args=tuple(args),
        step_models=tuple(step_models),
        regions=regions,
        n_steps=n_steps,
    )


def simulate_with_shortcuts(
    function: SteppedVGFunction,
    seed: int,
    args: tuple[Any, ...],
    analysis: MarkovAnalysis,
) -> tuple[np.ndarray, int]:
    """Run the chain, jumping over predictable regions.

    Returns ``(observations, steps_simulated)``. Observations inside a
    jumped region are reconstructed from the region's per-step models (the
    estimators are "valid for regions of the Markov chain"); observations at
    simulated steps are exact.

    Note the step RNG draws for skipped steps are *not* consumed. The skipped
    transitions themselves are (near-)deterministic, so this does not bias
    them; however, later *simulated* steps then see a shifted draw stream, so
    a shortcut run is not bit-identical to the full simulation of the same
    seed — it is a sample from the same distribution. Monte Carlo statistics
    (the quantities Fuzzy Prophet reports) are unaffected; per-seed replay is
    not a goal of the estimator.
    """
    if analysis.n_steps != function.n_components:
        raise FingerprintError(
            f"analysis covers {analysis.n_steps} steps, function has "
            f"{function.n_components}"
        )
    region_by_start = {region.start: region for region in analysis.regions}
    models_by_step = {model.step: model for model in analysis.step_models}
    rng = function.rng(seed, tuple(args))
    state = float(function.initial_state(rng, tuple(args)))
    observations = np.empty(function.n_components, dtype=float)
    steps_simulated = 0
    t = 0
    while t < function.n_components:
        region = region_by_start.get(t)
        if region is not None:
            entry_state = state
            for inner in range(region.start, region.stop + 1):
                model = models_by_step[inner]
                entry_state = model.scale * entry_state + model.offset
                observations[inner] = float(function.observe(entry_state, inner, tuple(args)))
            state = entry_state
            t = region.stop + 1
            continue
        state = float(function.step(state, t, rng, tuple(args)))
        observations[t] = float(function.observe(state, t, tuple(args)))
        steps_simulated += 1
        t += 1
    return observations, steps_simulated


def _fit_step(t: int, previous: np.ndarray, current: np.ndarray) -> StepModel:
    variance = float(np.var(previous))
    if variance <= 0.0:
        # Degenerate previous state: relation is a constant step.
        offset = float(np.mean(current)) - float(np.mean(previous))
        residual = float(np.sqrt(np.mean(np.square(current - previous - offset))))
        return StepModel(step=t, scale=1.0, offset=offset, residual=residual)
    previous_mean = float(np.mean(previous))
    current_mean = float(np.mean(current))
    covariance = float(np.mean((previous - previous_mean) * (current - current_mean)))
    scale = covariance / variance
    offset = current_mean - scale * previous_mean
    residual = float(np.sqrt(np.mean(np.square(current - (scale * previous + offset)))))
    return StepModel(step=t, scale=scale, offset=offset, residual=residual)


def _build_regions(
    step_models: list[StepModel], predictable: np.ndarray, min_region_length: int
) -> tuple[Region, ...]:
    regions: list[Region] = []
    models_by_step = {model.step: model for model in step_models}
    n_steps = predictable.shape[0]
    t = 1
    while t < n_steps:
        if not predictable[t]:
            t += 1
            continue
        start = t
        while t < n_steps and predictable[t]:
            t += 1
        stop = t - 1
        if stop - start + 1 >= min_region_length:
            scale = 1.0
            offset = 0.0
            for step in range(start, stop + 1):
                model = models_by_step[step]
                # Compose: new_state = m.scale * (scale*s + offset) + m.offset
                scale, offset = model.scale * scale, model.scale * offset + model.offset
            regions.append(Region(start=start, stop=stop, scale=scale, offset=offset))
    return tuple(regions)

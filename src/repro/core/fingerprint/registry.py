"""Fingerprint registry: the index of explored parameterizations.

The registry remembers the fingerprint of every ``(vg, model_args)``
parameterization that has been probed, and answers the engine's central
question: *given a new parameterization, which explored one maps onto it
best?* It also records the established mappings, which is exactly the data
behind the paper's Figure 4 visualization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import FingerprintError
from repro.core.fingerprint.correlation import (
    CorrelationPolicy,
    CorrelationResult,
    correlate,
)
from repro.core.fingerprint.fingerprint import (
    Fingerprint,
    FingerprintSpec,
    compute_fingerprint,
)
from repro.vg.base import VGFunction

ParamKey = tuple[Any, ...]


@dataclass(frozen=True)
class MatchOutcome:
    """Best-basis answer for one target parameterization."""

    basis_args: ParamKey
    correlation: CorrelationResult

    @property
    def mapped_fraction(self) -> float:
        return self.correlation.mapped_fraction


@dataclass(frozen=True)
class MappingRecord:
    """One established basis -> target mapping (Figure 4 material)."""

    vg_name: str
    basis_args: ParamKey
    target_args: ParamKey
    mapped_fraction: float
    kind_counts: dict[str, int]


class FingerprintRegistry:
    """Per-engine store of fingerprints and established mappings."""

    def __init__(self, spec: FingerprintSpec, policy: CorrelationPolicy) -> None:
        self.spec = spec
        self.policy = policy
        self._fingerprints: dict[tuple[str, ParamKey], Fingerprint] = {}
        self._mappings: list[MappingRecord] = []
        self.probes_computed = 0

    # -- fingerprints --------------------------------------------------------

    def fingerprint_of(self, function: VGFunction, args: Iterable[Any]) -> Fingerprint:
        """Fetch (or compute and remember) the fingerprint at ``args``."""
        key = (function.name.lower(), tuple(args))
        existing = self._fingerprints.get(key)
        if existing is not None:
            return existing
        fingerprint = compute_fingerprint(function, key[1], self.spec)
        self._fingerprints[key] = fingerprint
        self.probes_computed += 1
        return fingerprint

    def known_args(self, vg_name: str) -> tuple[ParamKey, ...]:
        lowered = vg_name.lower()
        return tuple(args for (name, args) in self._fingerprints if name == lowered)

    def has_fingerprint(self, vg_name: str, args: Iterable[Any]) -> bool:
        return (vg_name.lower(), tuple(args)) in self._fingerprints

    def get_fingerprint(
        self, vg_name: str, args: Iterable[Any]
    ) -> Optional[Fingerprint]:
        """The stored fingerprint at ``args``, or ``None`` (never computes)."""
        return self._fingerprints.get((vg_name.lower(), tuple(args)))

    def seed_fingerprint(self, fingerprint: Fingerprint) -> None:
        """Adopt an externally computed fingerprint (persistence, snapshots).

        The caller vouches that it was probed under this registry's spec;
        :func:`require_same_spec`-style validation is the caller's job.
        """
        self._fingerprints[
            (fingerprint.vg_name.lower(), tuple(fingerprint.args))
        ] = fingerprint

    # -- matching ---------------------------------------------------------------

    def best_match(
        self,
        function: VGFunction,
        target_args: Iterable[Any],
        candidate_args: Iterable[ParamKey],
        min_fraction: float = 0.0,
    ) -> Optional[MatchOutcome]:
        """Correlate the target against candidate bases; pick the best.

        ``candidate_args`` restricts the comparison to parameterizations the
        caller actually holds samples for (fingerprints alone cannot seed a
        remap). Returns ``None`` when no candidate maps at least
        ``min_fraction`` of components.
        """
        target_key = tuple(target_args)
        target_fp = self.fingerprint_of(function, target_key)
        best: Optional[MatchOutcome] = None
        for basis_key in candidate_args:
            if tuple(basis_key) == target_key:
                continue
            basis_fp = self._fingerprints.get((function.name.lower(), tuple(basis_key)))
            if basis_fp is None:
                continue
            correlation = correlate(basis_fp, target_fp, self.policy)
            outcome = MatchOutcome(basis_args=tuple(basis_key), correlation=correlation)
            if best is None or outcome.mapped_fraction > best.mapped_fraction:
                best = outcome
        if best is None or best.mapped_fraction < max(min_fraction, 1e-12):
            return None
        return best

    # -- mapping log ---------------------------------------------------------------

    def record_mapping(
        self, vg_name: str, basis_args: ParamKey, target_args: ParamKey,
        correlation: CorrelationResult,
    ) -> MappingRecord:
        record = MappingRecord(
            vg_name=vg_name,
            basis_args=tuple(basis_args),
            target_args=tuple(target_args),
            mapped_fraction=correlation.mapped_fraction,
            kind_counts=correlation.kind_counts(),
        )
        self._mappings.append(record)
        return record

    @property
    def mappings(self) -> tuple[MappingRecord, ...]:
        return tuple(self._mappings)

    def mappings_for(self, vg_name: str) -> tuple[MappingRecord, ...]:
        lowered = vg_name.lower()
        return tuple(m for m in self._mappings if m.vg_name.lower() == lowered)

    def clear(self) -> None:
        self._fingerprints.clear()
        self._mappings.clear()
        self.probes_computed = 0

    def __len__(self) -> int:
        return len(self._fingerprints)


def require_same_spec(registry: FingerprintRegistry, spec: FingerprintSpec) -> None:
    """Guard helper for engines sharing a registry."""
    if registry.spec != spec:
        raise FingerprintError(
            f"registry spec {registry.spec} differs from engine spec {spec}"
        )

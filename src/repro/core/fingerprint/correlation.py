"""Correlation detection between fingerprints.

Given fingerprints of the same VG-Function at two parameter points, we test
each output component (week) for a deterministic relationship across the
fixed probe seeds, from cheapest to most general:

1. **IDENTITY** — ``y == x`` (within tolerance): the parameter change does
   not affect this component at all (e.g. weeks before the earliest
   hardware-purchase date).
2. **SHIFT** — ``y == x + b``: a constant offset (e.g. weeks after both
   purchase dates, where the same cores have arrived either way).
3. **AFFINE** — ``y == a*x + b`` by least squares: scale-and-offset
   relationships (e.g. a demand curve under a different growth multiplier).

A component with residuals above tolerance under all three models is
**unmapped** and must be re-simulated. The set of per-component maps is a
:class:`CorrelationResult`; applying it to a stored sample matrix is
implemented in :mod:`repro.core.fingerprint.mapping`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import FingerprintError
from repro.core.fingerprint.fingerprint import Fingerprint


class MapKind(enum.Enum):
    IDENTITY = "identity"
    SHIFT = "shift"
    AFFINE = "affine"


@dataclass(frozen=True)
class ComponentMap:
    """A detected per-component relationship ``y = scale * x + offset``."""

    kind: MapKind
    scale: float = 1.0
    offset: float = 0.0
    residual: float = 0.0

    def apply(self, values: np.ndarray) -> np.ndarray:
        if self.kind == MapKind.IDENTITY:
            return values
        if self.kind == MapKind.SHIFT:
            return values + self.offset
        return self.scale * values + self.offset


@dataclass(frozen=True)
class CorrelationResult:
    """Per-component maps from a basis parameterization to a target one.

    ``maps[c]`` is ``None`` when component ``c`` could not be mapped.
    """

    maps: tuple[Optional[ComponentMap], ...]

    @property
    def n_components(self) -> int:
        return len(self.maps)

    @property
    def mapped_components(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.maps) if m is not None)

    @property
    def unmapped_components(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.maps) if m is None)

    @property
    def mapped_fraction(self) -> float:
        if not self.maps:
            return 0.0
        return len(self.mapped_components) / len(self.maps)

    def kind_counts(self) -> dict[str, int]:
        """How many components matched under each relationship kind."""
        counts = {kind.value: 0 for kind in MapKind}
        counts["unmapped"] = 0
        for component_map in self.maps:
            if component_map is None:
                counts["unmapped"] += 1
            else:
                counts[component_map.kind.value] += 1
        return counts


@dataclass(frozen=True)
class CorrelationPolicy:
    """Detection tolerances.

    ``tolerance`` is the maximum allowed root-mean-square residual of a
    candidate relationship, *relative* to the component's scale
    (``max(std(x), std(y), abs_floor)``). ``abs_floor`` guards components
    that are (near-)constant across seeds.
    """

    tolerance: float = 1e-6
    abs_floor: float = 1e-9
    allow_affine: bool = True
    allow_shift: bool = True

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise FingerprintError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.abs_floor <= 0:
            raise FingerprintError(f"abs_floor must be > 0, got {self.abs_floor}")


def match_component(
    x: np.ndarray, y: np.ndarray, policy: CorrelationPolicy
) -> Optional[ComponentMap]:
    """Find the cheapest relationship mapping probe outputs ``x`` to ``y``."""
    if x.shape != y.shape:
        raise FingerprintError(f"component shape mismatch: {x.shape} vs {y.shape}")
    scale_reference = max(float(np.std(x)), float(np.std(y)), policy.abs_floor)
    threshold = policy.tolerance * scale_reference

    identity_residual = _rms(y - x)
    if identity_residual <= threshold:
        return ComponentMap(MapKind.IDENTITY, residual=identity_residual)

    if policy.allow_shift:
        offset = float(np.mean(y - x))
        shift_residual = _rms(y - x - offset)
        if shift_residual <= threshold:
            return ComponentMap(MapKind.SHIFT, offset=offset, residual=shift_residual)

    if policy.allow_affine:
        affine = _fit_affine(x, y)
        if affine is not None:
            scale, offset = affine
            affine_residual = _rms(y - (scale * x + offset))
            if affine_residual <= threshold:
                return ComponentMap(
                    MapKind.AFFINE, scale=scale, offset=offset, residual=affine_residual
                )
    return None


def correlate(
    basis: Fingerprint, target: Fingerprint, policy: CorrelationPolicy
) -> CorrelationResult:
    """Match every component of ``target`` against ``basis``.

    Raises :class:`FingerprintError` when the fingerprints are not
    comparable (different function, probe spec, or component count).
    """
    if not basis.comparable_with(target):
        raise FingerprintError(
            f"fingerprints not comparable: {basis.vg_name}/{basis.spec} vs "
            f"{target.vg_name}/{target.spec}"
        )
    maps = tuple(
        match_component(basis.column(c), target.column(c), policy)
        for c in range(basis.n_components)
    )
    return CorrelationResult(maps=maps)


def _rms(values: np.ndarray) -> float:
    return float(np.sqrt(np.mean(np.square(values))))


def _fit_affine(x: np.ndarray, y: np.ndarray) -> Optional[tuple[float, float]]:
    """Least-squares fit ``y ~ a*x + b``; None when x is degenerate."""
    x_var = float(np.var(x))
    if x_var <= 0.0:
        return None
    x_mean = float(np.mean(x))
    y_mean = float(np.mean(y))
    covariance = float(np.mean((x - x_mean) * (y - y_mean)))
    scale = covariance / x_var
    offset = y_mean - scale * x_mean
    return scale, offset

"""The Result Aggregator (paper Figure 1, stage 4).

Turns the results table produced by the combine query into per-axis
statistics: expectations, standard deviations, overload probabilities,
confidence intervals. The statistics feed the online graph directly and the
Guide's convergence decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.sqldb.table import ResultSet


@dataclass(frozen=True)
class SeriesStats:
    """Per-axis statistics of one output alias."""

    alias: str
    expectation: np.ndarray  # E[output | t], one entry per axis value
    stddev: np.ndarray  # sqrt(Var[output | t]) over worlds
    n_worlds: int

    def ci_halfwidth(self, z: float = 1.96) -> np.ndarray:
        """Normal-approximation confidence half-width of the expectation.

        With one world (or none) no variance estimate exists — the ddof=1
        stddev is NaN — so the half-width is ``inf`` everywhere: an
        undetermined estimate must never look converged to the round
        protocol's stopping rule (:func:`repro.core.rounds.ci_converged`).
        """
        if self.n_worlds <= 1:
            return np.full_like(self.expectation, np.inf)
        return z * self.stddev / math.sqrt(self.n_worlds)


@dataclass(frozen=True)
class AxisStatistics:
    """Statistics of every output over the axis (the online-graph payload)."""

    axis_values: tuple[int, ...]
    series: Mapping[str, SeriesStats]
    n_worlds: int

    def expectation(self, alias: str) -> np.ndarray:
        return self._series(alias).expectation

    def stddev(self, alias: str) -> np.ndarray:
        return self._series(alias).stddev

    def max_expectation(self, alias: str) -> float:
        return float(np.max(self.expectation(alias)))

    def min_expectation(self, alias: str) -> float:
        return float(np.min(self.expectation(alias)))

    def _series(self, alias: str) -> SeriesStats:
        try:
            return self.series[alias.lower()]
        except KeyError:
            raise ScenarioError(f"no statistics for output {alias!r}") from None

    def aliases(self) -> tuple[str, ...]:
        return tuple(self.series.keys())


class ResultAggregator:
    """Builds :class:`AxisStatistics` from aggregate-query output."""

    def __init__(self, output_aliases: Sequence[str]) -> None:
        self.output_aliases = tuple(alias.lower() for alias in output_aliases)

    def from_aggregate_result(self, result: ResultSet, n_worlds: int) -> AxisStatistics:
        """Parse the Query Generator's aggregate query output.

        Expects columns ``t, e_<alias>, sd_<alias>, ...`` ordered by ``t``.
        """
        axis_values = tuple(int(v) for v in result.column("t"))
        series: dict[str, SeriesStats] = {}
        for alias in self.output_aliases:
            expectation = np.asarray(
                [_nan_if_none(v) for v in result.column(f"e_{alias}")], dtype=float
            )
            stddev = np.asarray(
                [_nan_if_none(v) for v in result.column(f"sd_{alias}")], dtype=float
            )
            series[alias] = SeriesStats(
                alias=alias, expectation=expectation, stddev=stddev, n_worlds=n_worlds
            )
        return AxisStatistics(axis_values=axis_values, series=series, n_worlds=n_worlds)

    def from_sample_matrices(
        self, matrices: Mapping[str, np.ndarray], axis_values: Sequence[int]
    ) -> AxisStatistics:
        """Build statistics directly from sample matrices (test utility).

        The production path goes through SQL; this exists so property tests
        can cross-check the SQL aggregation against numpy.
        """
        n_worlds = 0
        series: dict[str, SeriesStats] = {}
        for alias, matrix in matrices.items():
            data = np.asarray(matrix, dtype=float)
            n_worlds = data.shape[0]
            series[alias.lower()] = SeriesStats(
                alias=alias.lower(),
                expectation=data.mean(axis=0),
                stddev=data.std(axis=0, ddof=1) if data.shape[0] > 1 else np.zeros(data.shape[1]),
                n_worlds=n_worlds,
            )
        return AxisStatistics(
            axis_values=tuple(int(v) for v in axis_values), series=series, n_worlds=n_worlds
        )


def __getattr__(name: str):
    """Resolve the legacy ``ConvergenceTracker`` spelling, with a warning.

    The tracker was folded into the round/CI machinery in
    :mod:`repro.core.rounds`. The warning is attributed to the caller
    (``stacklevel=2``), so the CI ``deprecations`` job flags internal
    callers while external code merely sees the notice (PR 5's policy).
    """
    if name == "ConvergenceTracker":
        import warnings

        warnings.warn(
            "repro.core.aggregator.ConvergenceTracker is deprecated; "
            "import it from repro.core.rounds (the round/CI machinery)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.rounds import ConvergenceTracker

        return ConvergenceTracker
    raise AttributeError(
        f"module 'repro.core.aggregator' has no attribute {name!r}"
    )


def error_against_reference(
    estimate: AxisStatistics, reference: AxisStatistics, alias: str
) -> float:
    """Max absolute expectation error of ``estimate`` vs a reference run."""
    current = estimate.expectation(alias)
    truth = reference.expectation(alias)
    if current.shape != truth.shape:
        raise ScenarioError(
            f"shape mismatch comparing {alias!r}: {current.shape} vs {truth.shape}"
        )
    finite = np.isfinite(current) & np.isfinite(truth)
    if not finite.any():
        return math.inf
    return float(np.max(np.abs(current[finite] - truth[finite])))


def _nan_if_none(value: Any) -> float:
    return float("nan") if value is None else float(value)


# -- mergeable accumulators (repro.serve sharded evaluation) -----------------
#
# Sharded evaluation splits the fixed world-seed sequence into contiguous
# shards and evaluates them in parallel. Merging per-shard statistics must
# not depend on the shard split, so these accumulators keep *exact*
# sufficient statistics: sums are held as Shewchuk partial expansions (the
# algorithm behind ``math.fsum``) whose represented value is the exact real
# sum regardless of insertion or merge order, and the finalization rounds
# exactly once. Any partition of the same samples therefore finalizes to
# bit-identical floats.


class ExactSum:
    """Exact, mergeable float summation (Shewchuk partials).

    ``add`` maintains a list of non-overlapping partials whose mathematical
    sum equals the exact sum of everything added so far; ``merge`` folds in
    another accumulator's partials (still exact); ``value`` rounds the exact
    sum to the nearest float exactly once. Because the represented value is
    exact, the result is independent of how the inputs were partitioned.
    """

    __slots__ = ("_partials",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._partials: list[float] = []
        for value in values:
            self.add(value)

    def add(self, value: float) -> None:
        x = float(value)
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for partial in other._partials:
            self.add(partial)

    def value(self) -> float:
        """The exact sum, correctly rounded to one float."""
        return math.fsum(self._partials)

    def exact(self) -> Fraction:
        """The exact sum as a rational (floats are dyadic rationals)."""
        total = Fraction(0)
        for partial in self._partials:
            total += Fraction(partial)
        return total


_ZERO = Fraction(0)

#: Dekker's two-product is exact only while every intermediate product
#: stays clear of the subnormal floor. The binding term is ``lo * lo``:
#: ``lo``'s lowest mantissa bit sits at ``2**(e-52)`` for ``|x| ~ 2**e``,
#: so ``lo * lo`` needs bits down to ``2**(2e-104)``, which must stay
#: >= 2**-1074 — i.e. ``x * x`` >= ~2**-970. Anything below routes through
#: the exact-rational fallback (2**-960 leaves a safety margin).
_DEKKER_MIN_PRODUCT = 2.0**-960


def _exact_square(x: float) -> tuple[float, float, Fraction]:
    """``x * x`` as ``(product, rounding_error, rest)``, exact in total.

    The mathematical square equals ``product + rounding_error + rest``
    exactly. In the Dekker regime (product comfortably normal) the float
    pair alone is exact and ``rest`` is zero. Near and below the underflow
    threshold the rounding residual itself may need bits below the
    subnormal floor, where no finite sum of floats can represent it; the
    fallback then returns the correctly rounded float residual plus the
    exact rational remainder, so accumulators can stay exact in every
    regime.
    """
    product = x * x
    if not (_DEKKER_MIN_PRODUCT <= product < math.inf):
        if not math.isfinite(product):
            return product, 0.0, _ZERO  # overflow: no finite error term exists
        if x == 0.0:
            return 0.0, 0.0, _ZERO
        residual = Fraction(x) * Fraction(x) - Fraction(product)
        error = float(residual)
        return product, error, residual - Fraction(error)
    c = 134217729.0 * x  # 2**27 + 1
    hi = c - (c - x)
    lo = x - hi
    error = ((hi * hi - product) + 2.0 * hi * lo) + lo * lo
    return product, error, _ZERO


class MergeableMoments:
    """Mergeable count/sum/min/max and exact mean/variance of one stream.

    Sums of values *and* of their squares are kept exact (squares via
    Dekker two-product error compensation), and ``mean``/``variance``
    finalize through exact rational arithmetic — so any shard partition of
    the same values produces bit-identical statistics, and the only
    rounding in the result is the final one.
    """

    __slots__ = ("count", "_sum", "_sumsq", "_sumsq_rest", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        # Exact rational remainder of squares whose residual needs bits
        # below the subnormal floor (deep-underflow inputs); zero otherwise.
        self._sumsq_rest = _ZERO
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        x = float(value)
        self.count += 1
        self._sum.add(x)
        square, error, rest = _exact_square(x)
        self._sumsq.add(square)
        if error:
            self._sumsq.add(error)
        if rest:
            self._sumsq_rest += rest
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "MergeableMoments") -> None:
        self.count += other.count
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self._sumsq_rest += other._sumsq_rest
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def total(self) -> float:
        return self._sum.value()

    @property
    def mean(self) -> float:
        if self.count == 0:
            return math.nan
        return float(self._sum.exact() / self.count)

    def variance(self, ddof: int = 1) -> float:
        """Exact-rational sample variance, rounded once at the end."""
        if self.count <= ddof:
            return math.nan
        total = self._sum.exact()
        sumsq = self._sumsq.exact() + self._sumsq_rest
        exact = (sumsq - total * total / self.count) / (self.count - ddof)
        return float(max(exact, Fraction(0)))

    def stddev(self, ddof: int = 1) -> float:
        variance = self.variance(ddof)
        return math.sqrt(variance) if not math.isnan(variance) else math.nan


@dataclass
class WelfordAccumulator:
    """Streaming mean/M2 with the classic parallel (Chan) merge.

    The textbook mergeable moment estimator: numerically stable and much
    cheaper than exact summation, but the merge is *not* bit-identical
    across different shard splits (each merge rounds). Offered for callers
    that stream large volumes and don't need last-ulp determinism; the
    serve layer itself merges through :class:`MergeableMoments`, whose
    results are bit-stable under any partition.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "WelfordAccumulator") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total

    def variance(self, ddof: int = 1) -> float:
        if self.count <= ddof:
            return math.nan
        return max(self.m2, 0.0) / (self.count - ddof)

    def stddev(self, ddof: int = 1) -> float:
        variance = self.variance(ddof)
        return math.sqrt(variance) if not math.isnan(variance) else math.nan


class MergeableAxisStats:
    """Mergeable per-week statistics of every output alias.

    One :class:`MergeableMoments` per (alias, week): the week axis of an
    :class:`AxisStatistics`, in a form that shards can compute independently
    over their world slice and merge exactly. A shard's payload is
    ``O(aliases x weeks)`` regardless of how many worlds it simulated.
    """

    def __init__(self, aliases: Sequence[str], n_weeks: int) -> None:
        self.aliases = tuple(alias.lower() for alias in aliases)
        self.n_weeks = int(n_weeks)
        self._moments: dict[str, list[MergeableMoments]] = {
            alias: [MergeableMoments() for _ in range(self.n_weeks)]
            for alias in self.aliases
        }

    @classmethod
    def from_matrices(cls, matrices: Mapping[str, np.ndarray]) -> "MergeableAxisStats":
        """Accumulate from ``alias -> (n_worlds, n_weeks)`` sample matrices."""
        first = next(iter(matrices.values()))
        stats = cls(tuple(matrices.keys()), np.asarray(first).shape[1])
        for alias, matrix in matrices.items():
            data = np.asarray(matrix, dtype=float)
            if data.shape[1] != stats.n_weeks:
                raise ScenarioError(
                    f"matrix for {alias!r} has {data.shape[1]} weeks, "
                    f"expected {stats.n_weeks}"
                )
            per_week = stats._moments[alias.lower()]
            for week in range(stats.n_weeks):
                column = data[:, week]
                moments = per_week[week]
                for value in column:
                    moments.add(value)
        return stats

    def moments(self, alias: str, week: int) -> MergeableMoments:
        try:
            return self._moments[alias.lower()][week]
        except KeyError:
            raise ScenarioError(f"no statistics for output {alias!r}") from None

    def merge(self, other: "MergeableAxisStats") -> None:
        if self.aliases != other.aliases or self.n_weeks != other.n_weeks:
            raise ScenarioError(
                "cannot merge axis statistics with different aliases or weeks"
            )
        for alias in self.aliases:
            mine = self._moments[alias]
            theirs = other._moments[alias]
            for week in range(self.n_weeks):
                mine[week].merge(theirs[week])

    def to_axis_statistics(
        self, axis_values: Optional[Sequence[int]] = None
    ) -> AxisStatistics:
        """Finalize into an :class:`AxisStatistics` (ddof=1 stddev)."""
        axis = (
            tuple(int(v) for v in axis_values)
            if axis_values is not None
            else tuple(range(self.n_weeks))
        )
        n_worlds = 0
        series: dict[str, SeriesStats] = {}
        for alias in self.aliases:
            per_week = self._moments[alias]
            n_worlds = per_week[0].count if per_week else 0
            series[alias] = SeriesStats(
                alias=alias,
                expectation=np.asarray([m.mean for m in per_week], dtype=float),
                stddev=np.asarray([m.stddev() for m in per_week], dtype=float),
                n_worlds=n_worlds,
            )
        return AxisStatistics(axis_values=axis, series=series, n_worlds=n_worlds)

"""The Result Aggregator (paper Figure 1, stage 4).

Turns the results table produced by the combine query into per-axis
statistics: expectations, standard deviations, overload probabilities,
confidence intervals. The statistics feed the online graph directly and the
Guide's convergence decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.sqldb.table import ResultSet


@dataclass(frozen=True)
class SeriesStats:
    """Per-axis statistics of one output alias."""

    alias: str
    expectation: np.ndarray  # E[output | t], one entry per axis value
    stddev: np.ndarray  # sqrt(Var[output | t]) over worlds
    n_worlds: int

    def ci_halfwidth(self, z: float = 1.96) -> np.ndarray:
        """Normal-approximation confidence half-width of the expectation."""
        if self.n_worlds <= 0:
            return np.full_like(self.expectation, np.inf)
        return z * self.stddev / math.sqrt(self.n_worlds)


@dataclass(frozen=True)
class AxisStatistics:
    """Statistics of every output over the axis (the online-graph payload)."""

    axis_values: tuple[int, ...]
    series: Mapping[str, SeriesStats]
    n_worlds: int

    def expectation(self, alias: str) -> np.ndarray:
        return self._series(alias).expectation

    def stddev(self, alias: str) -> np.ndarray:
        return self._series(alias).stddev

    def max_expectation(self, alias: str) -> float:
        return float(np.max(self.expectation(alias)))

    def min_expectation(self, alias: str) -> float:
        return float(np.min(self.expectation(alias)))

    def _series(self, alias: str) -> SeriesStats:
        try:
            return self.series[alias.lower()]
        except KeyError:
            raise ScenarioError(f"no statistics for output {alias!r}") from None

    def aliases(self) -> tuple[str, ...]:
        return tuple(self.series.keys())


class ResultAggregator:
    """Builds :class:`AxisStatistics` from aggregate-query output."""

    def __init__(self, output_aliases: Sequence[str]) -> None:
        self.output_aliases = tuple(alias.lower() for alias in output_aliases)

    def from_aggregate_result(self, result: ResultSet, n_worlds: int) -> AxisStatistics:
        """Parse the Query Generator's aggregate query output.

        Expects columns ``t, e_<alias>, sd_<alias>, ...`` ordered by ``t``.
        """
        axis_values = tuple(int(v) for v in result.column("t"))
        series: dict[str, SeriesStats] = {}
        for alias in self.output_aliases:
            expectation = np.asarray(
                [_nan_if_none(v) for v in result.column(f"e_{alias}")], dtype=float
            )
            stddev = np.asarray(
                [_nan_if_none(v) for v in result.column(f"sd_{alias}")], dtype=float
            )
            series[alias] = SeriesStats(
                alias=alias, expectation=expectation, stddev=stddev, n_worlds=n_worlds
            )
        return AxisStatistics(axis_values=axis_values, series=series, n_worlds=n_worlds)

    def from_sample_matrices(
        self, matrices: Mapping[str, np.ndarray], axis_values: Sequence[int]
    ) -> AxisStatistics:
        """Build statistics directly from sample matrices (test utility).

        The production path goes through SQL; this exists so property tests
        can cross-check the SQL aggregation against numpy.
        """
        n_worlds = 0
        series: dict[str, SeriesStats] = {}
        for alias, matrix in matrices.items():
            data = np.asarray(matrix, dtype=float)
            n_worlds = data.shape[0]
            series[alias.lower()] = SeriesStats(
                alias=alias.lower(),
                expectation=data.mean(axis=0),
                stddev=data.std(axis=0, ddof=1) if data.shape[0] > 1 else np.zeros(data.shape[1]),
                n_worlds=n_worlds,
            )
        return AxisStatistics(
            axis_values=tuple(int(v) for v in axis_values), series=series, n_worlds=n_worlds
        )


@dataclass
class ConvergenceTracker:
    """Detects when progressive refinement has stabilized.

    The online mode refines estimates in passes; the view is "accurate" once
    the largest *relative* change between consecutive passes falls below
    ``tolerance``. Each series' delta is normalized by that series' scale
    (``max(|values|)``), so a capacity curve in the thousands and an overload
    probability in [0, 1] converge on comparable terms. Used to measure the
    paper's time-to-first-accurate-guess claim (C5).
    """

    tolerance: float = 0.01
    _previous: Optional[AxisStatistics] = field(default=None, repr=False)
    history: list[float] = field(default_factory=list)

    def update(self, statistics: AxisStatistics) -> float:
        """Record a refinement pass; returns the max relative series delta."""
        if self._previous is None:
            self._previous = statistics
            self.history.append(math.inf)
            return math.inf
        delta = 0.0
        for alias in statistics.aliases():
            current = statistics.expectation(alias)
            previous = self._previous.expectation(alias)
            if current.shape == previous.shape:
                finite = np.isfinite(current) & np.isfinite(previous)
                if finite.any():
                    scale = max(float(np.max(np.abs(current[finite]))), 1e-12)
                    change = float(np.max(np.abs(current[finite] - previous[finite])))
                    delta = max(delta, change / scale)
        self._previous = statistics
        self.history.append(delta)
        return delta

    @property
    def converged(self) -> bool:
        return bool(self.history) and self.history[-1] <= self.tolerance

    def reset(self) -> None:
        self._previous = None
        self.history.clear()


def error_against_reference(
    estimate: AxisStatistics, reference: AxisStatistics, alias: str
) -> float:
    """Max absolute expectation error of ``estimate`` vs a reference run."""
    current = estimate.expectation(alias)
    truth = reference.expectation(alias)
    if current.shape != truth.shape:
        raise ScenarioError(
            f"shape mismatch comparing {alias!r}: {current.shape} vs {truth.shape}"
        )
    finite = np.isfinite(current) & np.isfinite(truth)
    if not finite.any():
        return math.inf
    return float(np.max(np.abs(current[finite] - truth[finite])))


def _nan_if_none(value: Any) -> float:
    return float("nan") if value is None else float(value)

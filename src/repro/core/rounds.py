"""The round protocol: world-prefix rounds and CI-driven stopping rules.

Point evaluation proceeds in **rounds**: round *r* evaluates the world
prefix ``[0, boundary_r)`` of the fixed seed sequence. Because world ``w``
is always simulated from ``world_seed(base_seed, w)`` regardless of which
round (or process) produces it, every round boundary yields *exact*
statistics for the worlds computed so far, and the final full-prefix round
is bitwise identical to a one-shot evaluation — the round decomposition
itself loses nothing.

Stopping is a pure function of accumulated statistics, never wall-clock:
a point *converges* once the largest normal-approximation confidence
half-width across its output series falls to ``target_ci``. Identical
submissions therefore make identical stopping decisions on every re-run,
under any shard geometry and either executor — which is what makes
adaptive runs reproducible and testable.

This module folds the legacy progressive-refinement machinery into the
round protocol:

* :class:`RoundPlan` — the round ladder (previously spelled
  ``repro.core.guide.RefinementPlan``; that spelling still resolves, with
  a :class:`DeprecationWarning`).
* :class:`ConvergenceTracker` — the delta-based convergence heuristic the
  online mode uses between refinement passes (previously spelled
  ``repro.core.aggregator.ConvergenceTracker``; deprecated alias kept).
* :func:`max_ci_halfwidth` / :func:`ci_converged` — the CI stopping rule
  shared by :class:`~repro.core.engine.PointEvaluator` and the serve
  scheduler's budget allocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.aggregator import AxisStatistics
from repro.errors import ScenarioError


@dataclass(frozen=True)
class RoundPlan:
    """Split ``n_worlds`` into a ladder of growing world-prefix rounds.

    ``first`` worlds give the first (coarse) estimate; each later round
    adds ``growth`` times more until ``n_worlds`` is reached. The adaptive
    surface maps :class:`~repro.api.AdaptiveConfig`'s ``min_worlds`` /
    ``max_worlds`` / ``round_growth`` onto ``first`` / ``n_worlds`` /
    ``growth``.
    """

    n_worlds: int = 200
    first: int = 25
    growth: float = 2.0

    def __post_init__(self) -> None:
        if self.n_worlds < 1:
            raise ScenarioError(f"n_worlds must be >= 1, got {self.n_worlds}")
        if not 1 <= self.first <= self.n_worlds:
            raise ScenarioError(
                f"first pass must be in [1, {self.n_worlds}], got {self.first}"
            )
        if self.growth <= 1.0:
            raise ScenarioError(f"growth must be > 1, got {self.growth}")

    def passes(self) -> list[range]:
        """World-index ranges of each round's *increment* (contiguous)."""
        result: list[range] = []
        start = 0
        size = self.first
        while start < self.n_worlds:
            stop = min(start + size, self.n_worlds)
            result.append(range(start, stop))
            start = stop
            size = int(size * self.growth)
        return result

    def boundaries(self) -> tuple[int, ...]:
        """Cumulative world-prefix sizes, one per round, ending at
        ``n_worlds``. Round ``r`` evaluates worlds ``[0, boundaries()[r])``."""
        return tuple(world_range.stop for world_range in self.passes())

    def next_boundary(self, current: int) -> int:
        """The prefix the round after ``current`` worlds would extend to.

        Within the ladder this is the next planned boundary; past
        ``n_worlds`` it keeps growing geometrically (the budget allocator
        uses this to extend unresolved points with reallocated worlds).
        Always strictly greater than ``current``.
        """
        if current < 0:
            raise ScenarioError(f"current must be >= 0, got {current}")
        for boundary in self.boundaries():
            if boundary > current:
                return boundary
        return max(current + 1, int(current * self.growth))


def max_ci_halfwidth(statistics: AxisStatistics, z: float = 1.96) -> float:
    """The largest CI half-width across every output series and axis value.

    The scalar the stopping rule compares against ``target_ci``: a point is
    resolved only when *all* of its estimates are resolved. Non-finite
    half-widths (too few worlds, NaN statistics) report ``inf`` so an
    undetermined series can never be mistaken for a converged one.
    """
    worst = 0.0
    for alias in statistics.aliases():
        halfwidths = statistics.series[alias].ci_halfwidth(z)
        finite = np.isfinite(halfwidths)
        if not bool(finite.all()):
            return math.inf
        if halfwidths.size:
            worst = max(worst, float(np.max(halfwidths)))
    return worst


def ci_converged(
    statistics: AxisStatistics, target_ci: Optional[float], z: float = 1.96
) -> bool:
    """The round protocol's stopping rule (pure function of statistics).

    ``target_ci=None`` means adaptive stopping is off: never converged, the
    plan runs to its fixed budget.
    """
    if target_ci is None:
        return False
    return max_ci_halfwidth(statistics, z) <= target_ci


@dataclass
class ConvergenceTracker:
    """Detects when progressive refinement has stabilized (delta heuristic).

    The online mode refines estimates in rounds; the view is "accurate" once
    the largest *relative* change between consecutive rounds falls below
    ``tolerance``. Each series' delta is normalized by that series' scale
    (``max(|values|)``), so a capacity curve in the thousands and an overload
    probability in [0, 1] converge on comparable terms. Used to measure the
    paper's time-to-first-accurate-guess claim (C5).

    This is the *heuristic* stopping rule (cheap, but depends on the round
    ladder); the adaptive budget allocator stops on :func:`ci_converged`
    instead, which is a pure function of the accumulated statistics.
    """

    tolerance: float = 0.01
    _previous: Optional[AxisStatistics] = field(default=None, repr=False)
    history: list[float] = field(default_factory=list)

    def update(self, statistics: AxisStatistics) -> float:
        """Record a refinement round; returns the max relative series delta."""
        if self._previous is None:
            self._previous = statistics
            self.history.append(math.inf)
            return math.inf
        delta = 0.0
        for alias in statistics.aliases():
            current = statistics.expectation(alias)
            previous = self._previous.expectation(alias)
            if current.shape == previous.shape:
                finite = np.isfinite(current) & np.isfinite(previous)
                if finite.any():
                    scale = max(float(np.max(np.abs(current[finite]))), 1e-12)
                    change = float(np.max(np.abs(current[finite] - previous[finite])))
                    delta = max(delta, change / scale)
        self._previous = statistics
        self.history.append(delta)
        return delta

    @property
    def converged(self) -> bool:
        return bool(self.history) and self.history[-1] <= self.tolerance

    def reset(self) -> None:
        self._previous = None
        self.history.clear()

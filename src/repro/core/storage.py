"""The Storage Manager (paper Figure 1, stage 3).

Manages the set of *basis distributions*: for every VG parameterization the
engine has evaluated, the Monte Carlo sample matrix (``n_worlds x
n_components``) keyed by ``(vg_name, model_args)``. When the engine needs
samples for a new parameterization the Storage Manager:

1. returns the stored matrix on an exact hit;
2. otherwise asks the :class:`FingerprintRegistry` for the best correlated
   basis, remaps its matrix through the detected per-component maps, and
   fills only the unmapped components with real simulation;
3. otherwise reports a miss — the engine then runs the full generated-SQL
   sampling path and stores the result here.

The acquisition outcome is summarized in a :class:`ReuseReport`, the raw
material for every fingerprint-savings benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import FingerprintError
from repro.core.fingerprint.mapping import fill_components, remap_samples
from repro.core.fingerprint.registry import FingerprintRegistry, ParamKey
from repro.vg.base import VGFunction


def _nearest_candidates(
    target: ParamKey, candidates: Sequence[ParamKey], limit: int
) -> list[ParamKey]:
    """Rank basis candidates by argument distance, nearest first.

    Nearby parameterizations map best (their event windows overlap most),
    so correlation matching tries them first and skips distant ones. Bases
    with non-numeric or differently-shaped args sort last within the limit.
    """

    def distance(args: ParamKey) -> float:
        if len(args) != len(target):
            return float("inf")
        total = 0.0
        for a, b in zip(args, target):
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                total += abs(float(a) - float(b))
            elif a != b:
                total += 1.0
        return total

    # O(n log k) partial ranking: the basis store grows with every sweep,
    # but only the nearest ``limit`` candidates are ever probed.
    # heapq.nsmallest is documented to be equivalent to sorted(...)[:k]
    # (same stable tie order), so results match the full sort exactly.
    return heapq.nsmallest(max(limit, 1), candidates, key=distance)


@dataclass(frozen=True)
class ReuseReport:
    """How one sample matrix was obtained."""

    vg_name: str
    args: ParamKey
    source: str  # "fresh" | "exact" | "mapped"
    basis_args: Optional[ParamKey] = None
    mapped_fraction: float = 0.0
    components_total: int = 0
    components_recomputed: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)

    @property
    def components_reused(self) -> int:
        return self.components_total - self.components_recomputed


@dataclass
class BasisEntry:
    """One stored basis distribution."""

    vg_name: str
    args: ParamKey
    samples: np.ndarray  # (n_worlds, n_components)
    worlds: tuple[int, ...]
    seeds: tuple[int, ...]


class StorageManager:
    """Basis-distribution store with fingerprint-driven reuse."""

    def __init__(self, registry: FingerprintRegistry) -> None:
        self.registry = registry
        self._store: dict[tuple[str, ParamKey], BasisEntry] = {}
        self.exact_hits = 0
        self.mapped_hits = 0
        self.misses = 0

    # -- store -------------------------------------------------------------

    def store(
        self,
        function: VGFunction,
        args: Sequence[Any],
        samples: np.ndarray,
        worlds: Sequence[int],
        seeds: Sequence[int],
    ) -> BasisEntry:
        """Remember a sample matrix (and ensure its fingerprint is indexed)."""
        key = (function.name.lower(), tuple(args))
        matrix = np.asarray(samples, dtype=float)
        if matrix.ndim != 2:
            raise FingerprintError(f"sample matrix must be 2-D, got {matrix.ndim}-D")
        if matrix.shape[0] != len(worlds) or len(worlds) != len(seeds):
            raise FingerprintError(
                f"matrix rows {matrix.shape[0]} must match worlds {len(worlds)} "
                f"and seeds {len(seeds)}"
            )
        entry = BasisEntry(
            vg_name=function.name,
            args=key[1],
            samples=matrix,
            worlds=tuple(worlds),
            seeds=tuple(seeds),
        )
        self._store[key] = entry
        self.registry.fingerprint_of(function, key[1])
        return entry

    def stored_args(self, vg_name: str) -> tuple[ParamKey, ...]:
        lowered = vg_name.lower()
        return tuple(args for (name, args) in self._store if name == lowered)

    def entry(self, vg_name: str, args: Sequence[Any]) -> Optional[BasisEntry]:
        return self._store.get((vg_name.lower(), tuple(args)))

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.exact_hits = 0
        self.mapped_hits = 0
        self.misses = 0

    # -- acquire -------------------------------------------------------------

    def acquire(
        self,
        function: VGFunction,
        args: Sequence[Any],
        worlds: Sequence[int],
        seeds: Sequence[int],
        *,
        reuse: bool = True,
        min_mapped_fraction: float = 0.05,
    ) -> tuple[Optional[np.ndarray], ReuseReport]:
        """Try to produce the sample matrix for ``args`` from stored bases.

        Returns ``(samples, report)``; ``samples`` is ``None`` on a miss
        (the caller must evaluate freshly and call :meth:`store`).
        """
        key = (function.name.lower(), tuple(args))
        n_components = function.n_components

        exact = self._store.get(key)
        if exact is not None and self._covers(exact, worlds):
            self.exact_hits += 1
            report = ReuseReport(
                vg_name=function.name,
                args=key[1],
                source="exact",
                basis_args=key[1],
                mapped_fraction=1.0,
                components_total=n_components,
                components_recomputed=0,
                kind_counts={"identity": n_components},
            )
            return self._select_worlds(exact, worlds), report

        if reuse:
            candidates = [
                stored_args
                for stored_args in self.stored_args(function.name)
                if self._covers(self._store[(key[0], stored_args)], worlds)
            ]
            candidates = _nearest_candidates(key[1], candidates, limit=8)
            match = self.registry.best_match(
                function, key[1], candidates, min_fraction=min_mapped_fraction
            )
            if match is not None:
                basis = self._store[(key[0], match.basis_args)]
                basis_samples = self._select_worlds(basis, worlds)
                remapped = remap_samples(basis_samples, match.correlation)
                unmapped = remapped.unmapped_components
                if unmapped:
                    fresh = self._simulate_components(function, key[1], seeds, unmapped)
                    samples = fill_components(remapped.samples, unmapped, fresh)
                else:
                    samples = remapped.samples
                self.registry.record_mapping(
                    function.name, match.basis_args, key[1], match.correlation
                )
                self.mapped_hits += 1
                self._store[key] = BasisEntry(
                    vg_name=function.name,
                    args=key[1],
                    samples=samples,
                    worlds=tuple(worlds),
                    seeds=tuple(seeds),
                )
                report = ReuseReport(
                    vg_name=function.name,
                    args=key[1],
                    source="mapped",
                    basis_args=match.basis_args,
                    mapped_fraction=match.correlation.mapped_fraction,
                    components_total=n_components,
                    components_recomputed=len(unmapped),
                    kind_counts=match.correlation.kind_counts(),
                )
                return samples, report

        self.misses += 1
        report = ReuseReport(
            vg_name=function.name,
            args=key[1],
            source="fresh",
            components_total=n_components,
            components_recomputed=n_components,
        )
        return None, report

    # -- helpers -----------------------------------------------------------------

    def _covers(self, entry: BasisEntry, worlds: Sequence[int]) -> bool:
        stored = set(entry.worlds)
        return all(world in stored for world in worlds)

    def _select_worlds(self, entry: BasisEntry, worlds: Sequence[int]) -> np.ndarray:
        positions = {world: index for index, world in enumerate(entry.worlds)}
        rows = [positions[world] for world in worlds]
        return entry.samples[rows, :]

    def _simulate_components(
        self,
        function: VGFunction,
        args: ParamKey,
        seeds: Sequence[int],
        components: tuple[int, ...],
    ) -> np.ndarray:
        """Real simulation of only the unmapped components, world by world."""
        columns = np.empty((len(seeds), len(components)), dtype=float)
        for row, seed in enumerate(seeds):
            columns[row, :] = function.invoke_components(seed, tuple(args), components)
        return columns

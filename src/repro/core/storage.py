"""The Storage Manager (paper Figure 1, stage 3).

Manages the set of *basis distributions*: for every VG parameterization the
engine has evaluated, the Monte Carlo sample matrix (``n_worlds x
n_components``) keyed by ``(vg_name, model_args)``. When the engine needs
samples for a new parameterization the Storage Manager:

1. returns the stored matrix on an exact hit;
2. otherwise asks the :class:`FingerprintRegistry` for the best correlated
   basis, remaps its matrix through the detected per-component maps, and
   fills only the unmapped components with real simulation;
3. otherwise reports a miss — the engine then runs the full generated-SQL
   sampling path and stores the result here.

Bases live in a :class:`~repro.core.basis_store.TieredBasisStore`: an
LRU memory tier bounded by basis count and by resident sample bytes, over
an optional npz disk tier. Evicted entries spill to disk and fault back
transparently on exact or mapped hits; with no spill directory an evicted
entry simply degrades to a future fresh-sampling miss. Long sweeps thus
run in fixed memory — the ``--basis-cap`` / ``--basis-dir`` CLI knobs and
the matching :class:`~repro.core.engine.ProphetConfig` fields size the tiers.

The acquisition outcome is summarized in a :class:`ReuseReport`, the raw
material for every fingerprint-savings benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.errors import FingerprintError
from repro.core.basis_store import TieredBasisStore
from repro.core.fingerprint.mapping import fill_components, remap_samples
from repro.core.fingerprint.registry import FingerprintRegistry, ParamKey
from repro.vg.base import VGFunction
from repro.vg.seeds import world_seed


def _nearest_candidates(
    target: ParamKey, candidates: Sequence[ParamKey], limit: int
) -> list[ParamKey]:
    """Rank basis candidates by argument distance, nearest first.

    Nearby parameterizations map best (their event windows overlap most),
    so correlation matching tries them first and skips distant ones.
    Booleans are categorical, never numeric — ``True`` must not tie with
    ``1.0`` at distance zero (``bool`` is an ``int`` subclass, and Python's
    stable ordering would otherwise rank a wrong-typed basis first). Bases
    with mismatched types or differently-shaped args sort last within the
    limit.
    """

    def distance(args: ParamKey) -> float:
        if len(args) != len(target):
            return float("inf")
        total = 0.0
        for a, b in zip(args, target):
            a_bool = isinstance(a, bool)
            b_bool = isinstance(b, bool)
            if not a_bool and not b_bool and isinstance(a, (int, float)) and isinstance(b, (int, float)):
                total += abs(float(a) - float(b))
            elif a_bool != b_bool:
                total += 1.0  # bool vs number: a type mismatch, never equal
            elif a != b:
                total += 1.0
        return total

    # O(n log k) partial ranking: the basis store grows with every sweep,
    # but only the nearest ``limit`` candidates are ever probed.
    # heapq.nsmallest is documented to be equivalent to sorted(...)[:k]
    # (same stable tie order), so results match the full sort exactly.
    return heapq.nsmallest(max(limit, 1), candidates, key=distance)


@dataclass(frozen=True)
class ReuseReport:
    """How one sample matrix was obtained."""

    vg_name: str
    args: ParamKey
    source: str  # "fresh" | "exact" | "mapped"
    basis_args: Optional[ParamKey] = None
    mapped_fraction: float = 0.0
    components_total: int = 0
    components_recomputed: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)

    @property
    def components_reused(self) -> int:
        return self.components_total - self.components_recomputed


@dataclass
class BasisEntry:
    """One stored basis distribution."""

    vg_name: str
    args: ParamKey
    samples: np.ndarray  # (n_worlds, n_components)
    worlds: tuple[int, ...]
    seeds: tuple[int, ...]


def adopted_seeds_valid(entry: BasisEntry, base_seed: int) -> bool:
    """Were all of this entry's rows simulated from ``base_seed``'s seeds?

    The one definition of warm-start seed validation — adopted spill-dir
    entries must pass it before they are served, merged, or persisted.
    """
    return all(
        world_seed(base_seed, world) == seed
        for world, seed in zip(entry.worlds, entry.seeds)
    )


class StorageManager:
    """Basis-distribution store with fingerprint-driven reuse.

    ``basis_cap`` / ``basis_byte_cap`` bound the memory tier (entry count
    and resident sample bytes); ``spill_dir`` enables the disk tier evicted
    entries spill to. All default off — an unbounded in-RAM store, the
    pre-tiering behavior.

    ``store_mapped_results=False`` makes :meth:`acquire` side-effect free
    on the basis set (mapped results are returned but not retained): the
    serve layer's shared snapshot stores need their content to stay a pure
    function of the snapshot, so cached seeded stores can be reused across
    identical requests without decisions drifting with request history.
    """

    def __init__(
        self,
        registry: FingerprintRegistry,
        *,
        basis_cap: Optional[int] = None,
        basis_byte_cap: Optional[int] = None,
        spill_dir: Optional[str] = None,
        store_mapped_results: bool = True,
    ) -> None:
        self.registry = registry
        self.tier = TieredBasisStore(
            basis_cap=basis_cap, byte_cap=basis_byte_cap, spill_dir=spill_dir
        )
        self.store_mapped_results = store_mapped_results
        self.exact_hits = 0
        self.mapped_hits = 0
        self.misses = 0

    # -- store -------------------------------------------------------------

    def store(
        self,
        function: VGFunction,
        args: Sequence[Any],
        samples: np.ndarray,
        worlds: Sequence[int],
        seeds: Sequence[int],
    ) -> BasisEntry:
        """Remember a sample matrix (and ensure its fingerprint is indexed)."""
        key = (function.name.lower(), tuple(args))
        matrix = np.asarray(samples, dtype=float)
        if matrix.ndim != 2:
            raise FingerprintError(f"sample matrix must be 2-D, got {matrix.ndim}-D")
        if matrix.shape[0] != len(worlds) or len(worlds) != len(seeds):
            raise FingerprintError(
                f"matrix rows {matrix.shape[0]} must match worlds {len(worlds)} "
                f"and seeds {len(seeds)}"
            )
        entry = BasisEntry(
            vg_name=function.name,
            args=key[1],
            samples=matrix,
            worlds=tuple(worlds),
            seeds=tuple(seeds),
        )
        self.tier.put(key, entry)
        self.registry.fingerprint_of(function, key[1])
        return entry

    def stored_args(self, vg_name: str) -> tuple[ParamKey, ...]:
        """Known parameterizations for ``vg_name``, both tiers included."""
        lowered = vg_name.lower()
        return tuple(args for (name, args) in self.tier.keys() if name == lowered)

    def entry(self, vg_name: str, args: Sequence[Any]) -> Optional[BasisEntry]:
        """Fetch one basis, faulting it back from the disk tier if spilled."""
        return self.tier.get((vg_name.lower(), tuple(args)))

    def validated_entry(
        self, function: VGFunction, args: Sequence[Any], base_seed: int
    ) -> Optional[BasisEntry]:
        """:meth:`entry` plus warm-start validation.

        An adopted basis (pre-existing spill dir) whose rows were simulated
        under a different base seed, or whose component count no longer
        matches the model, can never serve this engine; it is discarded —
        so it stops faulting from disk on every request — and ``None`` is
        returned. Bases this process stored are trusted.
        """
        key = (function.name.lower(), tuple(args))
        entry = self.tier.get(key)
        if entry is None or not self.tier.is_adopted(key):
            return entry
        if entry.samples.shape[1] == function.n_components and adopted_seeds_valid(
            entry, base_seed
        ):
            return entry
        self.tier.discard(key)
        return None

    def entries(self) -> Iterator[tuple[tuple[str, ParamKey], BasisEntry]]:
        """Every readable ``(key, entry)`` across both tiers (persistence)."""
        return self.tier.items()

    def persistable_entries(
        self, base_seed: int
    ) -> Iterator[tuple[tuple[str, ParamKey], BasisEntry]]:
        """:meth:`entries`, minus adopted bases that fail seed validation.

        An archive is trusted by whoever loads it, so a stale-seed adoption
        (spill dir from a run with another base seed) must never be
        laundered into one — the acquire paths reject such entries, and
        persistence must too.
        """
        for key, entry in self.tier.items():
            if self.tier.is_adopted(key) and not adopted_seeds_valid(entry, base_seed):
                continue
            yield key, entry

    def __len__(self) -> int:
        return len(self.tier)

    def clear(self) -> None:
        self.tier.clear()
        self.exact_hits = 0
        self.mapped_hits = 0
        self.misses = 0

    # -- acquire -------------------------------------------------------------

    def acquire(
        self,
        function: VGFunction,
        args: Sequence[Any],
        worlds: Sequence[int],
        seeds: Sequence[int],
        *,
        reuse: bool = True,
        min_mapped_fraction: float = 0.05,
    ) -> tuple[Optional[np.ndarray], ReuseReport]:
        """Try to produce the sample matrix for ``args`` from stored bases.

        Returns ``(samples, report)``; ``samples`` is ``None`` on a miss
        (the caller must evaluate freshly and call :meth:`store`).
        """
        key = (function.name.lower(), tuple(args))
        n_components = function.n_components

        # Coverage checks run on spill metadata (peek) so that candidates
        # are only ever faulted back once actually selected.
        exact = None
        if self._covers_worlds(self.tier.peek_worlds(key), worlds):
            exact = self.tier.get(key)  # may fault back; None degrades to miss
            if exact is not None and not self._adoption_valid(
                key, exact, function, worlds, seeds
            ):
                # Stale adopted basis: discard it so it stops faulting from
                # disk on every request — it can never serve these seeds.
                self.tier.discard(key)
                exact = None
        if exact is not None and self._covers(exact, worlds):
            self.exact_hits += 1
            report = ReuseReport(
                vg_name=function.name,
                args=key[1],
                source="exact",
                basis_args=key[1],
                mapped_fraction=1.0,
                components_total=n_components,
                components_recomputed=0,
                kind_counts={"identity": n_components},
            )
            return self._select_worlds(exact, worlds), report

        if reuse:
            candidates = [
                stored_args
                for stored_args in self.stored_args(function.name)
                if self._covers_worlds(
                    self.tier.peek_worlds((key[0], stored_args)), worlds
                )
            ]
            candidates = _nearest_candidates(key[1], candidates, limit=8)
            # Bases adopted from a warm-started spill dir (or loaded with a
            # mismatched probe spec) have no fingerprint yet; probe the few
            # surviving candidates so best_match can actually consider them
            # — fingerprint_of is a cached no-op for everything stored by
            # this process.
            for candidate in candidates:
                self.registry.fingerprint_of(function, candidate)
            match = self.registry.best_match(
                function, key[1], candidates, min_fraction=min_mapped_fraction
            )
            basis = (
                self.tier.get((key[0], match.basis_args))
                if match is not None
                else None
            )
            if basis is not None and not self._adoption_valid(
                (key[0], match.basis_args), basis, function, worlds, seeds
            ):
                # A warm start with another base seed must never feed stale
                # samples into a remap; expel the unserveable basis.
                self.tier.discard((key[0], match.basis_args))
                basis = None
            # A vanished or unreadable spill file degrades to a miss below.
            if basis is not None and self._covers(basis, worlds):
                basis_samples = self._select_worlds(basis, worlds)
                remapped = remap_samples(basis_samples, match.correlation)
                unmapped = remapped.unmapped_components
                if unmapped:
                    fresh = self._simulate_components(function, key[1], seeds, unmapped)
                    samples = fill_components(remapped.samples, unmapped, fresh)
                else:
                    samples = remapped.samples
                self.registry.record_mapping(
                    function.name, match.basis_args, key[1], match.correlation
                )
                self.mapped_hits += 1
                if self.store_mapped_results:
                    self.tier.put(
                        key,
                        BasisEntry(
                            vg_name=function.name,
                            args=key[1],
                            samples=samples,
                            worlds=tuple(worlds),
                            seeds=tuple(seeds),
                        ),
                    )
                    if self.tier.is_tainted((key[0], match.basis_args)):
                        # Mapping from geometry-dependent samples produces
                        # geometry-dependent samples.
                        self.tier.taint(key)
                report = ReuseReport(
                    vg_name=function.name,
                    args=key[1],
                    source="mapped",
                    basis_args=match.basis_args,
                    mapped_fraction=match.correlation.mapped_fraction,
                    components_total=n_components,
                    components_recomputed=len(unmapped),
                    kind_counts=match.correlation.kind_counts(),
                )
                return samples, report

        self.misses += 1
        report = ReuseReport(
            vg_name=function.name,
            args=key[1],
            source="fresh",
            components_total=n_components,
            components_recomputed=n_components,
        )
        return None, report

    # -- helpers -----------------------------------------------------------------

    def _covers(self, entry: BasisEntry, worlds: Sequence[int]) -> bool:
        return self._covers_worlds(entry.worlds, worlds)

    def _adoption_valid(
        self,
        key: tuple[str, ParamKey],
        entry: BasisEntry,
        function: VGFunction,
        worlds: Sequence[int],
        seeds: Sequence[int],
    ) -> bool:
        """Can this entry safely serve the request?

        Bases this process stored are trusted and skip every check; only
        entries adopted from a pre-existing spill dir are validated. Two
        ways an adoption can be stale: the dir was written under a
        different base seed (rows simulated from other seeds), or the
        model changed shape since the dir was written (wrong component
        count) — both must degrade to fresh misses, never serve.
        """
        if not self.tier.is_adopted(key):
            return True
        if entry.samples.shape[1] != function.n_components:
            return False
        position = {world: index for index, world in enumerate(entry.worlds)}
        for world, seed in zip(worlds, seeds):
            index = position.get(world)
            # A missing world means the faulted content no longer matches
            # its index record — treat like any other stale adoption.
            if index is None or entry.seeds[index] != seed:
                return False
        return True

    def _covers_worlds(
        self, stored_worlds: Optional[tuple[int, ...]], worlds: Sequence[int]
    ) -> bool:
        if stored_worlds is None:
            return False
        stored = set(stored_worlds)
        return all(world in stored for world in worlds)

    def _select_worlds(self, entry: BasisEntry, worlds: Sequence[int]) -> np.ndarray:
        positions = {world: index for index, world in enumerate(entry.worlds)}
        rows = [positions[world] for world in worlds]
        return entry.samples[rows, :]

    def _simulate_components(
        self,
        function: VGFunction,
        args: ParamKey,
        seeds: Sequence[int],
        components: tuple[int, ...],
    ) -> np.ndarray:
        """Real simulation of only the unmapped components, world by world."""
        columns = np.empty((len(seeds), len(components)), dtype=float)
        for row, seed in enumerate(seeds):
            columns[row, :] = function.invoke_components(seed, tuple(args), components)
        return columns

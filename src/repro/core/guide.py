"""The Guide (paper Figure 1, stage 1).

The Guide directs scenario evaluation by producing the sequence of instance
batches to evaluate — each batch is one parameter point with its Monte Carlo
worlds. Strategies:

* :class:`GridGuide` — exhaustive sweep of the parameter grid (offline mode).
* :class:`PriorityGuide` — evaluate an explicit target first, then proactive
  neighbors (online mode: the user's slider position is urgent; adjacent
  slider positions are speculatively explored, which is what the demo GUI's
  "values proactively being explored anticipating their future usage" grid
  shows).

The per-point world ladder lives in :class:`repro.core.rounds.RoundPlan`
(the round protocol); the pre-round spelling ``RefinementPlan`` still
resolves here, with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.core.instance import InstanceBatch
from repro.core.parameters import ParameterSpace
from repro.core.rounds import RoundPlan
from repro.errors import ScenarioError


def __getattr__(name: str):
    """Resolve the legacy ``RefinementPlan`` spelling, with a warning.

    The plan was folded into the round protocol as
    :class:`repro.core.rounds.RoundPlan` (same fields, same pass
    semantics, plus the round-boundary helpers). The warning is attributed
    to the caller (``stacklevel=2``) per PR 5's deprecation policy.
    """
    if name == "RefinementPlan":
        import warnings

        warnings.warn(
            "repro.core.guide.RefinementPlan is deprecated; use "
            "repro.core.rounds.RoundPlan (same fields and pass semantics)",
            DeprecationWarning,
            stacklevel=2,
        )
        return RoundPlan
    raise AttributeError(f"module 'repro.core.guide' has no attribute {name!r}")


class GridGuide:
    """Sweep every point of the (axis-excluded) parameter grid in order."""

    def __init__(
        self, space: ParameterSpace, axis: str, plan: RoundPlan, base_seed: int
    ) -> None:
        self.space = space
        self.axis = axis.lstrip("@").lower()
        self.plan = plan
        self.base_seed = base_seed

    def batches(self) -> Iterator[InstanceBatch]:
        worlds = range(self.plan.n_worlds)
        for point in self.space.grid(exclude=[self.axis]):
            yield InstanceBatch.at_point(point, worlds, self.base_seed)

    def total_points(self) -> int:
        return self.space.grid_size(exclude=[self.axis])


class PriorityGuide:
    """Target point first, then its neighbors along each parameter axis.

    ``neighbor_depth`` controls how far the proactive ring extends (1 means
    immediate slider neighbors).
    """

    def __init__(
        self,
        space: ParameterSpace,
        axis: str,
        plan: RoundPlan,
        base_seed: int,
        neighbor_depth: int = 1,
    ) -> None:
        if neighbor_depth < 0:
            raise ScenarioError(f"neighbor_depth must be >= 0, got {neighbor_depth}")
        self.space = space
        self.axis = axis.lstrip("@").lower()
        self.plan = plan
        self.base_seed = base_seed
        self.neighbor_depth = neighbor_depth

    def target_batch(self, point: Mapping[str, Any]) -> InstanceBatch:
        validated = self._validated(point)
        return InstanceBatch.at_point(validated, range(self.plan.n_worlds), self.base_seed)

    def proactive_points(self, point: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Points to explore speculatively around ``point``.

        One-parameter-at-a-time perturbations up to ``neighbor_depth`` steps,
        de-duplicated, nearest first.
        """
        validated = self._validated(point)
        frontier: list[dict[str, Any]] = []
        seen: set[tuple] = {self.space.without(self.axis).point_key(validated)}
        sweep_space = self.space.without(self.axis)
        current_ring = [validated]
        for _ in range(self.neighbor_depth):
            next_ring: list[dict[str, Any]] = []
            for base in current_ring:
                for parameter in sweep_space:
                    for neighbor_value in parameter.neighbors(base[parameter.name.lower()]):
                        candidate = dict(base)
                        candidate[parameter.name.lower()] = neighbor_value
                        key = sweep_space.point_key(candidate)
                        if key in seen:
                            continue
                        seen.add(key)
                        next_ring.append(candidate)
            frontier.extend(next_ring)
            current_ring = next_ring
        return frontier

    def proactive_batches(
        self, point: Mapping[str, Any], worlds: Sequence[int] | None = None
    ) -> Iterator[InstanceBatch]:
        chosen = range(self.plan.first) if worlds is None else worlds
        for candidate in self.proactive_points(point):
            yield InstanceBatch.at_point(candidate, chosen, self.base_seed)

    def _validated(self, point: Mapping[str, Any]) -> dict[str, Any]:
        sweep_space = self.space.without(self.axis)
        return sweep_space.validate_point(
            {k: v for k, v in point.items() if k.lstrip("@").lower() != self.axis}
        )

"""Offline mode: automated constrained parameter optimization (paper §3.3).

The optimizer sweeps the full parameter grid (the Guide's ``GridGuide``
order), evaluates the scenario at every point — with fingerprint reuse
turned on, most points are *mapped* from earlier ones instead of freshly
simulated — checks the ``OPTIMIZE ... WHERE`` constraint on each point's
axis statistics, and returns the feasible point that lexicographically
maximizes/minimizes the ``FOR MAX/MIN @param`` objectives.

For Figure 2's scenario this answers: *the latest purchase dates that keep
the expected chance of overload below the threshold for the whole year.*
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import OptimizationError
from repro.core.aggregator import AxisStatistics
from repro.core.engine import ProphetConfig, ProphetEngine
from repro.core.guide import GridGuide
from repro.core.scenario import OptimizeSpec, Scenario
from repro.sqldb.ast_nodes import (
    BinaryOp,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.vg.library import VGLibrary

#: Axis-level reducers allowed in OPTIMIZE constraints.
_AXIS_REDUCERS: dict[str, Callable[[np.ndarray], float]] = {
    "MAX": lambda v: float(np.nanmax(v)),
    "MIN": lambda v: float(np.nanmin(v)),
    "AVG": lambda v: float(np.nanmean(v)),
    "SUM": lambda v: float(np.nansum(v)),
}


@dataclass(frozen=True)
class ReuseSummary:
    """Compressed reuse information for one VG model at one point."""

    vg_name: str
    source: str
    mapped_fraction: float
    basis_args: Optional[tuple] = None


@dataclass(frozen=True)
class PointRecord:
    """One explored grid point."""

    point: dict[str, Any]
    feasible: bool
    constraint_value: Optional[float]
    statistics: AxisStatistics
    reuse: tuple[ReuseSummary, ...]
    elapsed_seconds: float

    @property
    def dominant_source(self) -> str:
        """'fresh' if any model was fresh, else 'mapped'/'exact'."""
        sources = {summary.source for summary in self.reuse}
        if "fresh" in sources:
            return "fresh"
        if "mapped" in sources:
            return "mapped"
        return "exact"


@dataclass
class OptimizationResult:
    """Full sweep outcome."""

    scenario_name: str
    records: list[PointRecord] = field(default_factory=list)
    best: Optional[PointRecord] = None
    elapsed_seconds: float = 0.0
    vg_invocations: int = 0
    component_samples: int = 0
    reuse_enabled: bool = True

    @property
    def feasible_records(self) -> list[PointRecord]:
        return [record for record in self.records if record.feasible]

    @property
    def points_evaluated(self) -> int:
        return len(self.records)

    def source_counts(self) -> dict[str, int]:
        counts = {"fresh": 0, "mapped": 0, "exact": 0}
        for record in self.records:
            counts[record.dominant_source] += 1
        return counts

    def best_point(self) -> dict[str, Any]:
        if self.best is None:
            raise OptimizationError("no feasible point found")
        return dict(self.best.point)


class ConstraintEvaluator:
    """Evaluates OPTIMIZE constraints over one point's axis statistics.

    Grammar (Figure 2 style): comparisons and boolean/arithmetic operators
    over axis reducers (``MAX``/``MIN``/``AVG``/``SUM``) applied to the
    Monte Carlo statistics ``EXPECT alias`` / ``EXPECT_STDDEV alias``.
    """

    def __init__(self, statistics: AxisStatistics) -> None:
        self.statistics = statistics

    def evaluate(self, expression: Expression) -> Any:
        value = self._eval(expression)
        if isinstance(value, np.ndarray):
            raise OptimizationError(
                "constraint evaluates to a per-week series; wrap it in "
                "MAX()/MIN()/AVG() to reduce over the axis"
            )
        return value

    def _eval(self, expression: Expression) -> Any:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, FunctionCall):
            return self._eval_call(expression)
        if isinstance(expression, BinaryOp):
            return self._eval_binary(expression)
        if isinstance(expression, UnaryOp):
            operand = self._eval(expression.operand)
            if expression.operator.upper() == "NOT":
                return not bool(operand)
            return -operand if expression.operator == "-" else +operand
        raise OptimizationError(
            f"unsupported constraint construct: {type(expression).__name__}"
        )

    def _eval_call(self, call: FunctionCall) -> Any:
        name = call.name.upper()
        if name in ("EXPECT", "EXPECT_STDDEV"):
            alias = self._alias_of(call)
            if name == "EXPECT":
                return self.statistics.expectation(alias)
            return self.statistics.stddev(alias)
        if name in _AXIS_REDUCERS:
            if len(call.args) != 1:
                raise OptimizationError(f"{name} takes exactly one argument")
            inner = self._eval(call.args[0])
            if not isinstance(inner, np.ndarray):
                raise OptimizationError(f"{name} expects a per-week series")
            return _AXIS_REDUCERS[name](inner)
        raise OptimizationError(f"unsupported function in constraint: {call.name}")

    def _alias_of(self, call: FunctionCall) -> str:
        from repro.sqldb.ast_nodes import ColumnRef

        if len(call.args) != 1 or not isinstance(call.args[0], ColumnRef):
            raise OptimizationError(
                f"{call.name} expects a single output alias argument"
            )
        return call.args[0].name

    def _eval_binary(self, node: BinaryOp) -> Any:
        operator = node.operator.upper()
        left = self._eval(node.left)
        right = self._eval(node.right)
        if operator == "AND":
            return bool(left) and bool(right)
        if operator == "OR":
            return bool(left) or bool(right)
        comparisons: dict[str, Callable[[Any, Any], bool]] = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        if operator in comparisons:
            if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
                raise OptimizationError(
                    "cannot compare a per-week series; reduce with MAX()/MIN()/AVG()"
                )
            return comparisons[operator](left, right)
        arithmetic: dict[str, Callable[[Any, Any], Any]] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
        }
        if operator in arithmetic:
            return arithmetic[operator](left, right)
        raise OptimizationError(f"unsupported operator in constraint: {node.operator}")


class OfflineOptimizer:
    """Grid sweep + constraint check + lexicographic objective."""

    def __init__(
        self,
        scenario: Scenario,
        library: VGLibrary,
        config: ProphetConfig | None = None,
        engine: ProphetEngine | None = None,
        scheduler: Optional[Any] = None,
        session_name: str = "optimizer",
    ) -> None:
        self.session_name = session_name
        if scenario.optimize is None:
            raise OptimizationError(
                f"scenario {scenario.name!r} has no OPTIMIZE specification"
            )
        self.scenario = scenario
        self.spec: OptimizeSpec = scenario.optimize
        self.scheduler = scheduler
        if scheduler is not None:
            # Sweep through the shared sharded service: every grid point's
            # fresh sampling fans out across the worker pool and lands in
            # the cross-run result cache.
            from repro.serve.cache import scenario_fingerprint

            service = scheduler.service
            if scenario_fingerprint(scenario, library) != scenario_fingerprint(
                service.scenario, service.engine.library
            ):
                raise OptimizationError(
                    "scheduler serves a different scenario/library than "
                    "this optimizer's"
                )
            if engine is not None:
                raise OptimizationError(
                    "pass either engine= or scheduler=, not both"
                )
            if config is not None and config != service.engine.config:
                raise OptimizationError(
                    "config= conflicts with the scheduler's engine config; "
                    "omit it or build the service with this config"
                )
            self.engine = service.engine
        elif engine is not None:
            if engine.scenario is not scenario:
                raise OptimizationError(
                    "engine= was built for a different scenario object than "
                    "this optimizer's"
                )
            if config is not None and config != engine.config:
                raise OptimizationError(
                    "config= conflicts with the shared engine's config; "
                    "omit it or build the engine with this config"
                )
            self.engine = engine
        else:
            self.engine = ProphetEngine(scenario, library, config)

    def run(
        self,
        *,
        reuse: bool = True,
        progress: Optional[Callable[[PointRecord], None]] = None,
    ) -> OptimizationResult:
        """Sweep the grid; returns the full result with the best point.

        ``progress`` is invoked after each point — the hook behind the
        demo's live-updated view of the sweep (Figure 4).
        """
        guide = GridGuide(
            self.scenario.space,
            self.scenario.axis,
            self.engine.config.plan(),
            self.engine.config.base_seed,
        )
        result = OptimizationResult(
            scenario_name=self.scenario.name, reuse_enabled=reuse
        )
        invocations_before = self.engine.invocation_count()
        samples_before = self.engine.component_sample_count()
        # repro-lint: disable=DET001 -- feeds OptimizationResult timing, a
        # user-facing readout; point selection reads statistics only.
        sweep_started = time.perf_counter()
        for batch in guide.batches():
            # repro-lint: disable=DET001 -- observability only (see above).
            started = time.perf_counter()
            if self.scheduler is not None:
                evaluation = self.scheduler.evaluate(
                    batch.point_dict,
                    worlds=batch.worlds,
                    session=self.session_name,
                    reuse=reuse,
                )
            else:
                evaluation = self.engine.evaluate_point(
                    batch.point_dict, worlds=batch.worlds, reuse=reuse
                )
            # repro-lint: disable=DET001 -- observability only (see above).
            record = self._record_for(evaluation, time.perf_counter() - started)
            result.records.append(record)
            if progress is not None:
                progress(record)
        # repro-lint: disable=DET001 -- observability only (see above).
        result.elapsed_seconds = time.perf_counter() - sweep_started
        result.vg_invocations = self.engine.invocation_count() - invocations_before
        result.component_samples = self.engine.component_sample_count() - samples_before
        result.best = self._select_best(result.records)
        return result

    # -- internals ---------------------------------------------------------------

    def _record_for(self, evaluation, elapsed: float) -> PointRecord:
        feasible = True
        constraint_value: Optional[float] = None
        if self.spec.constraint is not None:
            evaluator = ConstraintEvaluator(evaluation.statistics)
            outcome = evaluator.evaluate(self.spec.constraint)
            if isinstance(outcome, bool):
                feasible = outcome
            else:
                raise OptimizationError(
                    f"constraint must evaluate to a boolean, got {outcome!r}"
                )
            constraint_value = self._constraint_scalar(evaluation.statistics)
        reuse = tuple(
            ReuseSummary(
                vg_name=report.vg_name,
                source=report.source,
                mapped_fraction=report.mapped_fraction,
                basis_args=report.basis_args,
            )
            for report in evaluation.reuse_reports
        )
        return PointRecord(
            point=evaluation.point,
            feasible=feasible,
            constraint_value=constraint_value,
            statistics=evaluation.statistics,
            reuse=reuse,
            elapsed_seconds=elapsed,
        )

    def _constraint_scalar(self, statistics: AxisStatistics) -> Optional[float]:
        """The left-hand scalar of a simple ``reducer(...) < bound`` constraint
        (for reporting); ``None`` when the constraint is more complex."""
        constraint = self.spec.constraint
        if isinstance(constraint, BinaryOp) and constraint.operator in ("<", "<=", ">", ">="):
            try:
                value = ConstraintEvaluator(statistics)._eval(constraint.left)
            except OptimizationError:
                return None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        return None

    def _select_best(self, records: list[PointRecord]) -> Optional[PointRecord]:
        feasible = [record for record in records if record.feasible]
        if not feasible:
            return None

        def objective_key(record: PointRecord) -> tuple:
            key = []
            for objective in self.spec.objectives:
                value = record.point[objective.parameter.lstrip("@").lower()]
                key.append(value if objective.direction == "MAX" else _negate(value))
            return tuple(key)

        return max(feasible, key=objective_key)


def _negate(value: Any) -> Any:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return -value
    raise OptimizationError(
        f"FOR MIN objective requires a numeric parameter, got {value!r}"
    )

"""Risk metrics over Monte Carlo sample matrices.

Paper §2: the Result Aggregator "produces expectations, standard deviations,
and other desired metrics". This module supplies the enterprise-analytics
metrics beyond mean/stddev: per-week quantiles, exceedance probabilities,
expected shortfall, and worst-week summaries — computed from the sample
matrices the Storage Manager already holds (no extra simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import ScenarioError
from repro.core.engine import PointEvaluation
from repro.core.scenario import DerivedOutput, Scenario
from repro.sqldb.expressions import EvalContext, evaluate
from repro.sqldb.functions import builtin_scalar_functions


def quantile_series(samples: np.ndarray, q: float) -> np.ndarray:
    """Per-component ``q``-quantile of a (worlds x components) matrix."""
    if not 0.0 <= q <= 1.0:
        raise ScenarioError(f"quantile must be in [0, 1], got {q}")
    return np.quantile(np.asarray(samples, dtype=float), q, axis=0)


def exceedance_probability(samples: np.ndarray, threshold: float) -> np.ndarray:
    """Per-component P(value > threshold)."""
    data = np.asarray(samples, dtype=float)
    return (data > threshold).mean(axis=0)


def shortfall_probability(samples: np.ndarray, threshold: float) -> np.ndarray:
    """Per-component P(value < threshold) — e.g. capacity under demand floor."""
    data = np.asarray(samples, dtype=float)
    return (data < threshold).mean(axis=0)


def expected_shortfall(samples: np.ndarray, q: float) -> np.ndarray:
    """Per-component mean of the worst ``q`` tail (a CVaR-style metric).

    For each component, averages the values at or below the ``q``-quantile.
    """
    data = np.asarray(samples, dtype=float)
    cutoff = quantile_series(data, q)
    result = np.empty(data.shape[1], dtype=float)
    for component in range(data.shape[1]):
        column = data[:, component]
        tail = column[column <= cutoff[component]]
        result[component] = tail.mean() if tail.size else float("nan")
    return result


@dataclass(frozen=True)
class RiskSummary:
    """Headline risk numbers for one output at one parameter point."""

    alias: str
    worst_week: int
    worst_week_value: float
    p05: np.ndarray
    p50: np.ndarray
    p95: np.ndarray


class RiskAnalyzer:
    """Derives risk metrics from a :class:`PointEvaluation`.

    VG outputs use the stored sample matrices directly; derived outputs
    (``overload``, ``headroom``...) are re-evaluated elementwise from the VG
    matrices through the scenario's own SQL expressions, so the metrics stay
    consistent with the combine query's semantics.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self._functions = builtin_scalar_functions()

    def samples_for(self, evaluation: PointEvaluation, alias: str) -> np.ndarray:
        if not evaluation.samples:
            raise ScenarioError(
                "evaluation carries no sample matrices (it was served from "
                "the repro.serve result cache, which stores only statistics);"
                " re-evaluate with the cache disabled to analyze risk"
            )
        key = alias.lower()
        if key in evaluation.samples:
            return evaluation.samples[key]
        derived = self._derived_output(key)
        return self._derived_matrix(evaluation, derived)

    def quantiles(
        self, evaluation: PointEvaluation, alias: str, qs: tuple[float, ...] = (0.05, 0.5, 0.95)
    ) -> dict[float, np.ndarray]:
        samples = self.samples_for(evaluation, alias)
        return {q: quantile_series(samples, q) for q in qs}

    def summary(self, evaluation: PointEvaluation, alias: str, *, worst: str = "max") -> RiskSummary:
        """Headline summary; ``worst`` picks the max- or min-mean week."""
        samples = self.samples_for(evaluation, alias)
        means = samples.mean(axis=0)
        worst_week = int(np.argmax(means) if worst == "max" else np.argmin(means))
        quantiles = self.quantiles(evaluation, alias)
        return RiskSummary(
            alias=alias.lower(),
            worst_week=worst_week,
            worst_week_value=float(means[worst_week]),
            p05=quantiles[0.05],
            p50=quantiles[0.5],
            p95=quantiles[0.95],
        )

    def overload_run_lengths(self, evaluation: PointEvaluation, alias: str = "overload") -> np.ndarray:
        """Distribution of the longest consecutive overloaded stretch per world.

        Capacity planners care whether overloads cluster; this returns one
        value per Monte Carlo world: its longest run of overloaded weeks.
        """
        samples = self.samples_for(evaluation, alias)
        binary = samples > 0.5
        runs = np.zeros(binary.shape[0], dtype=float)
        for world in range(binary.shape[0]):
            longest = current = 0
            for flag in binary[world]:
                current = current + 1 if flag else 0
                longest = max(longest, current)
            runs[world] = longest
        return runs

    # -- internals -----------------------------------------------------------

    def _derived_output(self, alias: str) -> DerivedOutput:
        for output in self.scenario.derived_outputs:
            if output.alias.lower() == alias:
                return output
        raise ScenarioError(f"no output named {alias!r} in scenario {self.scenario.name!r}")

    def _derived_matrix(
        self, evaluation: PointEvaluation, derived: DerivedOutput
    ) -> np.ndarray:
        matrices: Mapping[str, np.ndarray] = evaluation.samples
        first = next(iter(matrices.values()))
        n_worlds, n_components = first.shape
        result = np.empty((n_worlds, n_components), dtype=float)
        env: dict[str, Any] = {}
        context = EvalContext(
            columns=env, variables=dict(evaluation.point), functions=self._functions
        )
        for world in range(n_worlds):
            for component in range(n_components):
                env.clear()
                env[self.scenario.axis] = component
                env["t"] = component
                for name, matrix in matrices.items():
                    env[name] = float(matrix[world, component])
                value = evaluate(derived.expression, context)
                result[world, component] = float(value) if value is not None else np.nan
        return result

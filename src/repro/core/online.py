"""Online mode: interactive parameter exploration (paper §3.2).

The :class:`OnlineSession` is the programmatic equivalent of the demo GUI:
one slider per sweep parameter, a live graph of per-week statistics, and a
progressively refined estimate. Fingerprints make the second and later
adjustments cheap — only the weeks whose distribution actually changed are
re-simulated, and the graph reports exactly which weeks were re-rendered.

Proactive exploration: between user interactions the session can evaluate
neighboring slider positions speculatively (the demo GUI's parameter-space
grid showing "values proactively being explored anticipating their future
usage"); a subsequent move to one of those values is then an instant hit.

Scheduler backend: passing a :class:`repro.serve.Scheduler` routes every
evaluation through the shared sharded evaluation service — slider refreshes
run their fresh sampling across the worker pool, proactive exploration is
submitted as deduplicated jobs, and results land in the cross-run cache for
other sessions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import OnlineSessionError
from repro.core.aggregator import AxisStatistics
from repro.core.rounds import ConvergenceTracker
from repro.core.engine import PointEvaluation, ProphetConfig, ProphetEngine
from repro.core.guide import PriorityGuide
from repro.core.scenario import Scenario
from repro.vg.library import VGLibrary


@dataclass(frozen=True)
class GraphView:
    """One rendering of the online graph after an interaction."""

    point: dict[str, Any]
    statistics: AxisStatistics
    refreshed_weeks: tuple[int, ...]  # weeks whose estimates were recomputed
    reused_weeks: tuple[int, ...]  # weeks served from mapped/stored bases
    elapsed_seconds: float
    n_worlds: int
    vg_invocations: int
    component_samples: int

    @property
    def refresh_fraction(self) -> float:
        """Fraction of rendered weeks that were recomputed this interaction.

        An empty view (nothing refreshed, nothing reused — e.g. a
        cache-served evaluation carrying no week sets) re-rendered nothing,
        so it reports ``0.0``; reporting ``1.0`` would inflate aggregate
        refresh-cost metrics with phantom full refreshes.
        """
        total = len(self.refreshed_weeks) + len(self.reused_weeks)
        if total == 0:
            return 0.0
        return len(self.refreshed_weeks) / total


@dataclass
class InteractionLog:
    """History of slider interactions (drives the demo narrative)."""

    views: list[GraphView] = field(default_factory=list)

    def record(self, view: GraphView) -> None:
        self.views.append(view)

    @property
    def last(self) -> Optional[GraphView]:
        return self.views[-1] if self.views else None

    def __len__(self) -> int:
        return len(self.views)


class OnlineSession:
    """Interactive exploration session over one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        library: VGLibrary,
        config: ProphetConfig | None = None,
        neighbor_depth: int = 1,
        scheduler: Optional[Any] = None,
        session_name: str = "online",
        engine: Optional[ProphetEngine] = None,
    ) -> None:
        self.scheduler = scheduler
        self.session_name = session_name
        if engine is not None and scheduler is not None:
            raise OnlineSessionError(
                "pass either engine= or scheduler=, not both"
            )
        if engine is not None and config is not None and config != engine.config:
            raise OnlineSessionError(
                "config= conflicts with the shared engine's config; "
                "omit it or build the engine with this config"
            )
        if scheduler is not None:
            # Share the scheduler's coordinator engine so this session sees
            # (and contributes to) the same bases, caches, and counters as
            # every other session on the service. VG work done by shard
            # workers happens in their processes and is not reflected in
            # this engine's invocation counters.
            from repro.serve.cache import scenario_fingerprint

            service = scheduler.service
            if scenario_fingerprint(scenario, library) != scenario_fingerprint(
                service.scenario, service.engine.library
            ):
                raise OnlineSessionError(
                    "scheduler serves a different scenario/library than "
                    "this session's"
                )
            if config is not None and config != service.engine.config:
                raise OnlineSessionError(
                    "config= conflicts with the scheduler's engine config; "
                    "omit it or build the service with this config"
                )
            self.engine = service.engine
        elif engine is not None:
            # Share a caller-owned engine (the repro.api client's), so the
            # session sees and contributes to the same bases and counters.
            if engine.scenario is not scenario:
                raise OnlineSessionError(
                    "engine= was built for a different scenario object than "
                    "this session's"
                )
            self.engine = engine
        else:
            self.engine = ProphetEngine(scenario, library, config)
        self.scenario = scenario
        self.guide = PriorityGuide(
            scenario.space,
            scenario.axis,
            self.engine.config.plan(),
            self.engine.config.base_seed,
            neighbor_depth=neighbor_depth,
        )
        self._sliders: dict[str, Any] = scenario.sweep_space.default_point()
        self.log = InteractionLog()
        self.tracker = ConvergenceTracker()

    # -- sliders --------------------------------------------------------------

    @property
    def sliders(self) -> dict[str, Any]:
        """Current slider positions (copy)."""
        return dict(self._sliders)

    def set_slider(self, name: str, value: Any) -> None:
        """Move one slider (does not evaluate; call :meth:`refresh`)."""
        key = name.lstrip("@").lower()
        if key == self.scenario.axis:
            raise OnlineSessionError(
                f"@{key} is the graph axis, not a slider"
            )
        parameter = self.scenario.space.parameter(key)
        if value not in parameter:
            raise OnlineSessionError(
                f"value {value!r} not in domain of @{parameter.name} "
                f"(domain: {parameter.values})"
            )
        self._sliders[key] = value

    def set_sliders(self, values: Mapping[str, Any]) -> None:
        for name, value in values.items():
            self.set_slider(name, value)

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, *, worlds=None, reuse: bool = True) -> PointEvaluation:
        """One point evaluation, via the scheduler backend when present."""
        if self.scheduler is not None:
            return self.scheduler.evaluate(
                self._sliders, worlds=worlds, session=self.session_name, reuse=reuse
            )
        return self.engine.evaluate_point(self._sliders, worlds=worlds, reuse=reuse)

    def refresh(self, *, reuse: bool = True) -> GraphView:
        """Evaluate the scenario at the current slider point; full worlds."""
        # repro-lint: disable=DET001 -- feeds GraphView.elapsed_seconds, a
        # user-facing latency readout; never read by the engine.
        started = time.perf_counter()
        invocations_before = self.engine.invocation_count()
        samples_before = self.engine.component_sample_count()
        evaluation = self._evaluate(reuse=reuse)
        view = self._view_from(
            evaluation,
            # repro-lint: disable=DET001 -- observability only (see above).
            time.perf_counter() - started,
            self.engine.invocation_count() - invocations_before,
            self.engine.component_sample_count() - samples_before,
        )
        self.log.record(view)
        self.tracker.update(view.statistics)
        return view

    def refresh_progressive(self, *, reuse: bool = True) -> list[GraphView]:
        """Refine in passes (coarse first); returns one view per pass.

        The first view is the "first guess"; the convergence tracker decides
        when the estimate has stabilized — the basis of the paper's lower
        time-to-first-accurate-guess claim.
        """
        views: list[GraphView] = []
        self.tracker.reset()
        for world_range in self.engine.config.plan().passes():
            # repro-lint: disable=DET001 -- per-pass latency readout for
            # GraphView; convergence tracks statistics, not wall time.
            started = time.perf_counter()
            invocations_before = self.engine.invocation_count()
            samples_before = self.engine.component_sample_count()
            evaluation = self._evaluate(worlds=range(world_range.stop), reuse=reuse)
            view = self._view_from(
                evaluation,
                # repro-lint: disable=DET001 -- observability only (see above).
                time.perf_counter() - started,
                self.engine.invocation_count() - invocations_before,
                self.engine.component_sample_count() - samples_before,
            )
            views.append(view)
            self.log.record(view)
            self.tracker.update(view.statistics)
            if self.tracker.converged:
                break
        return views

    def explore_proactively(self, max_points: int | None = None) -> int:
        """Speculatively evaluate neighbor points (coarse pass only).

        Returns the number of points explored. Call while the user is idle;
        their next slider move then lands on a stored basis.

        With a scheduler backend the neighbor points are submitted as jobs
        first (coalescing with any identical in-flight requests from other
        sessions) and then drained through the shared shard pool.
        """
        explored = 0
        if self.scheduler is not None:
            jobs = []
            for batch in self.guide.proactive_batches(self._sliders):
                if max_points is not None and explored >= max_points:
                    break
                jobs.append(
                    self.scheduler.submit(
                        batch.point_dict,
                        worlds=batch.worlds,
                        session=self.session_name,
                    )
                )
                explored += 1
            self.scheduler.run_pending()
            failed = [job for job in jobs if job.error is not None]
            if failed:
                # The sequential path propagates evaluation errors; the
                # scheduler path must not hide them in job records.
                raise OnlineSessionError(
                    f"{len(failed)} proactive evaluation(s) failed; "
                    f"first: {failed[0].error}"
                )
            return explored
        for batch in self.guide.proactive_batches(self._sliders):
            if max_points is not None and explored >= max_points:
                break
            self.engine.evaluate_point(batch.point_dict, worlds=batch.worlds, reuse=True)
            explored += 1
        return explored

    # -- views --------------------------------------------------------------------

    def _view_from(
        self,
        evaluation: PointEvaluation,
        elapsed: float,
        invocations: int,
        component_samples: int,
    ) -> GraphView:
        refreshed: set[int] = set()
        reused: set[int] = set()
        n_components = len(evaluation.statistics.axis_values)
        for report in evaluation.reuse_reports:
            if report.source == "fresh":
                refreshed.update(range(n_components))
            else:
                # components_recomputed are listed 0..n-1 in kind order; the
                # reuse report carries counts, the mapping registry carries
                # identities. Recompute identities from the report:
                recomputed = set()
                if report.source == "mapped":
                    recomputed = set(self._recomputed_weeks(report))
                refreshed.update(recomputed)
                reused.update(set(range(n_components)) - recomputed)
        reused -= refreshed
        return GraphView(
            point=evaluation.point,
            statistics=evaluation.statistics,
            refreshed_weeks=tuple(sorted(refreshed)),
            reused_weeks=tuple(sorted(reused)),
            elapsed_seconds=elapsed,
            n_worlds=evaluation.n_worlds,
            vg_invocations=invocations,
            component_samples=component_samples,
        )

    def _recomputed_weeks(self, report) -> tuple[int, ...]:
        """Identify which weeks a mapped acquisition re-simulated."""
        for record in reversed(self.engine.registry.mappings):
            if (
                record.vg_name.lower() == report.vg_name.lower()
                and record.target_args == report.args
            ):
                # Re-derive the unmapped set from the stored fingerprints.
                function = self.engine.library.get(report.vg_name)
                fp_target = self.engine.registry.fingerprint_of(function, report.args)
                fp_basis = self.engine.registry.fingerprint_of(function, record.basis_args)
                from repro.core.fingerprint.correlation import correlate

                correlation = correlate(fp_basis, fp_target, self.engine.registry.policy)
                return correlation.unmapped_components
        return ()

    # -- convenience ---------------------------------------------------------------

    def graph_series(self, view: GraphView) -> dict[str, np.ndarray]:
        """The series the GRAPH directive asks for, keyed by label."""
        if self.scenario.graph is None:
            raise OnlineSessionError("scenario has no GRAPH directive")
        series: dict[str, np.ndarray] = {}
        for spec in self.scenario.graph.series:
            if spec.kind == "EXPECT":
                series[f"E[{spec.alias}]"] = view.statistics.expectation(spec.alias)
            else:
                series[f"SD[{spec.alias}]"] = view.statistics.stddev(spec.alias)
        return series

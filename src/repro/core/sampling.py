"""The sampling plane: the fresh Monte Carlo stage with pluggable backends.

Fresh sampling — the only stage of the Figure-1 cycle that no reuse layer
can serve — used to be duplicated as per-world INSERT loops in
``ProphetEngine._sql_sample`` and (transitively) in every shard worker.
:class:`SamplingPlane` extracts that stage behind one abstraction with two
backends:

* ``batched`` (default) — one generated statement per world *slice*: the
  batch table form of the VG-Function (``nameTB(@_worlds, @_seeds, ...)``)
  produces the whole ``(n_worlds, n_components)`` matrix in a single
  invocation and the executor's columnar bulk-insert path lands it without
  materializing Python row tuples.
* ``loop`` — the original per-world parameterized INSERT template, one
  statement execution per world. Retained as the fallback and as the
  bit-identity reference.

Every backend is required to be bit-identical to the per-world loop: the
batch table form routes each world's randomness through that world's own
seed-derived stream (see :meth:`repro.vg.base.VGFunction.generate_batch`
and its parity guard), both backends land the identical world-major row
order, and both read the matrix back through the same ORDER BY query. When
the batched backend cannot run — a catalog without the batch table form —
the plane silently degrades to the loop, and the
``ExecutionStats.sampled_batched`` / ``sampled_fallback`` world-row
counters (surfaced by ``repro ... --stats``) make that degradation
observable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ScenarioError
from repro.obs.trace import NULL_TRACER
from repro.sqldb.pdbext import BATCH_FORM_SUFFIX

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.instance import InstanceBatch
    from repro.core.querygen import QueryGenerator
    from repro.core.scenario import VGOutput
    from repro.sqldb.executor import Executor
    from repro.vg.library import VGLibrary


#: Known sampling backends, in documentation order.
SAMPLING_BACKENDS: tuple[str, ...] = ("batched", "loop")


class _NullTimings:
    """Timing sink used when the caller does not attribute stage time."""

    querygen = 0.0
    sql = 0.0


class SamplingPlane:
    """Fresh-sampling stage shared by the engine and every shard worker.

    One plane serves one engine's (query generator, SQL executor, VG
    library) triple. :meth:`sample` produces the fresh sample matrix of one
    VG output over one instance batch, through the configured backend, and
    attributes wall-clock to the caller's ``timings`` (any object with
    mutable ``querygen``/``sql`` float attributes — the engine passes its
    :class:`~repro.core.engine.StageTimings`).
    """

    def __init__(
        self,
        querygen: "QueryGenerator",
        executor: "Executor",
        library: "VGLibrary",
        backend: str = "batched",
    ) -> None:
        if backend not in SAMPLING_BACKENDS:
            raise ScenarioError(
                f"unknown sampling backend {backend!r} "
                f"(known: {', '.join(SAMPLING_BACKENDS)})"
            )
        self.querygen = querygen
        self.executor = executor
        self.library = library
        self.backend = backend
        #: Backend that served the most recent :meth:`sample` call
        #: ("batched" or "loop"); shard workers report it upstream.
        self.last_backend: str = backend
        #: Slice accounting for the round protocol: every request this plane
        #: serves is one contiguous world slice (a round's fresh increment,
        #: under rounds). ``worlds_served`` summing to ``n_worlds`` — not to
        #: the sum of round prefixes — is what proves a round ladder
        #: fresh-samples each world exactly once.
        self.slices_served: int = 0
        self.worlds_served: int = 0
        #: Observability: the engine's :meth:`~repro.core.engine.
        #: ProphetEngine.set_tracer` replaces this shared no-op tracer.
        self.tracer = NULL_TRACER

    # -- public API ---------------------------------------------------------

    def sample(
        self,
        output: "VGOutput",
        batch: "InstanceBatch",
        timings: Optional[object] = None,
    ) -> np.ndarray:
        """Fresh Monte Carlo samples of ``output`` over ``batch``.

        Returns the ``(len(batch), n_components)`` matrix and leaves the
        scenario's samples table populated, exactly as the per-world loop
        would.
        """
        if not len(batch):
            raise ScenarioError("sampling needs at least one world")
        sink = timings if timings is not None else _NullTimings()
        self.slices_served += 1
        self.worlds_served += len(batch)
        stats = self.executor.stats
        if self.backend == "batched" and self._batch_form_available(output):
            self.last_backend = "batched"
            stats.sampled_batched += len(batch)
            with self.tracer.span(
                "sample", alias=output.alias, backend="batched", worlds=len(batch)
            ):
                return self._sample_batched(output, batch, sink)
        self.last_backend = "loop"
        stats.sampled_fallback += len(batch)
        with self.tracer.span(
            "sample", alias=output.alias, backend="loop", worlds=len(batch)
        ):
            return self._sample_loop(output, batch, sink)

    # -- backends -----------------------------------------------------------

    def _batch_form_available(self, output: "VGOutput") -> bool:
        return self.executor.catalog.has_table_function(
            output.vg_name + BATCH_FORM_SUFFIX
        )

    def _sample_batched(self, output, batch, timings) -> np.ndarray:
        """One statement lands the entire world slice."""
        with self.tracer.stage("querygen", timings):
            drop = self.querygen.drop_samples_table_sql(output.alias)
            create = self.querygen.create_samples_table_sql(output.alias)
            insert = self.querygen.insert_batch_template(output)

        with self.tracer.stage("sql", timings, stats=self.executor.stats):
            self.executor.execute(drop)
            self.executor.execute(create)
            self.executor.execute(
                insert,
                self.querygen.batch_variables(
                    batch.worlds, batch.seeds, batch.point_dict
                ),
            )
        return self._read_back(output, batch, timings)

    def _sample_loop(self, output, batch, timings) -> np.ndarray:
        """The per-world parameterized INSERT loop (bit-identity reference)."""
        with self.tracer.stage("querygen", timings):
            drop = self.querygen.drop_samples_table_sql(output.alias)
            create = self.querygen.create_samples_table_sql(output.alias)
            insert = self.querygen.insert_world_template(output)

        with self.tracer.stage("sql", timings, stats=self.executor.stats):
            self.executor.execute(drop)
            self.executor.execute(create)
            point = batch.point_dict
            for instance in batch:
                self.executor.execute(
                    insert,
                    self.querygen.world_variables(
                        instance.world, instance.seed, point
                    ),
                )
        return self._read_back(output, batch, timings)

    def _read_back(self, output, batch, timings) -> np.ndarray:
        """Read the landed samples back into matrix form (shared tail)."""
        with self.tracer.stage("querygen", timings):
            readback = (
                f"SELECT world, t, value "
                f"FROM {self.querygen.samples_table(output.alias)} "
                f"ORDER BY world, t"
            )

        with self.tracer.stage("sql", timings, stats=self.executor.stats):
            result = self.executor.execute(readback)

        n_components = self.library.get(output.vg_name).n_components
        n_worlds = len(batch)
        if len(result) != n_worlds * n_components:
            raise ScenarioError(
                f"sampling produced {len(result)} rows, expected "
                f"{n_worlds * n_components}"
            )
        values = np.asarray(result.column_array("value"), dtype=float)
        return values.reshape(n_worlds, n_components)

"""Persistence of basis distributions and fingerprints.

A Fuzzy Prophet deployment accumulates basis distributions as analysts
explore; persisting them means tomorrow's session starts warm. This module
saves/loads the Storage Manager's bases and the fingerprint registry's
probe matrices to a single ``.npz`` archive (numpy's portable format).

Only state that is sound to reuse is persisted: sample matrices, world
ids/seeds, and fingerprints. Mappings are *not* persisted — they are cheap
to re-derive and depend on the correlation policy, which may change between
sessions. Loading validates that the engine's fingerprint spec matches the
archive's; mismatched probes would make stored fingerprints incomparable.

Model args are encoded with the type-preserving scheme from
:mod:`repro.core.argcodec` (format version 2): nested tuples, bools, and
non-finite floats all round-trip exactly, so a reloaded basis exact-hits
its original ``(vg_name, tuple(args))`` key. Version-1 archives (plain
JSON args) still load: their JSON arrays decode as nested tuples, which
restores hashability and the original tuple keys (bool/int aliasing from
v1 encoding is not recoverable).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import FingerprintError
from repro.core.argcodec import decode_args, decode_legacy_args, encode_args
from repro.core.engine import ProphetEngine
from repro.core.fingerprint.fingerprint import Fingerprint

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _encode_args(args: tuple[Any, ...]) -> str:
    return encode_args(args)


def _decode_args(text: str, format_version: int = _FORMAT_VERSION) -> tuple[Any, ...]:
    if format_version == 1:
        return decode_legacy_args(text)
    return decode_args(text)


def save_bases(engine: ProphetEngine, path: str | Path) -> int:
    """Persist the engine's basis distributions; returns the entry count."""
    arrays: dict[str, np.ndarray] = {}
    manifest: list[dict[str, Any]] = []
    persistable = engine.storage.persistable_entries(engine.config.base_seed)
    for index, ((vg_name, args), entry) in enumerate(persistable):
        arrays[f"samples_{index}"] = entry.samples
        arrays[f"worlds_{index}"] = np.asarray(entry.worlds, dtype=np.int64)
        arrays[f"seeds_{index}"] = np.asarray(entry.seeds, dtype=np.uint64)
        record: dict[str, Any] = {
            "vg_name": entry.vg_name,
            "args": _encode_args(entry.args),
        }
        fingerprint = engine.registry.get_fingerprint(vg_name, args)
        if fingerprint is not None:
            arrays[f"fingerprint_{index}"] = fingerprint.matrix
            record["has_fingerprint"] = True
        else:
            record["has_fingerprint"] = False
        manifest.append(record)

    header = {
        "format_version": _FORMAT_VERSION,
        "scenario": engine.scenario.name,
        "n_probe_seeds": engine.registry.spec.n_seeds,
        "probe_base_seed": engine.registry.spec.base_seed,
        "entries": manifest,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)
    return len(manifest)


def load_bases(engine: ProphetEngine, path: str | Path, *, strict: bool = True) -> int:
    """Load persisted bases into the engine; returns the entries loaded.

    ``strict=True`` (default) raises when the archive's probe spec differs
    from the engine's; ``strict=False`` skips the stored fingerprints instead
    (bases still load — they will be re-probed on demand).
    """
    with np.load(Path(path)) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        format_version = header.get("format_version")
        if format_version not in _SUPPORTED_VERSIONS:
            raise FingerprintError(
                f"unsupported basis archive version: {format_version}"
            )
        spec = engine.registry.spec
        spec_matches = (
            header["n_probe_seeds"] == spec.n_seeds
            and header["probe_base_seed"] == spec.base_seed
        )
        if strict and not spec_matches:
            raise FingerprintError(
                "archive probe spec "
                f"(k={header['n_probe_seeds']}, base={header['probe_base_seed']}) "
                f"differs from engine spec (k={spec.n_seeds}, base={spec.base_seed})"
            )

        loaded = 0
        for index, record in enumerate(header["entries"]):
            vg_name = record["vg_name"]
            if vg_name not in engine.library:
                continue  # the model was removed; its bases are useless
            function = engine.library.get(vg_name)
            args = _decode_args(record["args"], format_version)
            samples = archive[f"samples_{index}"]
            if samples.shape[1] != function.n_components:
                continue  # the model changed shape; stale basis
            worlds = archive[f"worlds_{index}"].tolist()
            seeds = [int(s) for s in archive[f"seeds_{index}"]]
            # Seed the registry before store(): store() indexes the
            # fingerprint and must find the persisted one instead of paying
            # k probe invocations per basis.
            if spec_matches and record.get("has_fingerprint"):
                engine.registry.seed_fingerprint(
                    Fingerprint(
                        vg_name=function.name,
                        args=args,
                        matrix=archive[f"fingerprint_{index}"],
                        spec=spec,
                    )
                )
            engine.storage.store(function, args, samples, worlds, seeds)
            loaded += 1
    return loaded

"""Scenario representation.

A *scenario* is the declarative business model of paper Figure 2: a
parameter space, a list of outputs (VG-model outputs and derived columns),
plus metadata for the online graph and the offline optimizer.

Output kinds
------------

* :class:`VGOutput` — ``DemandModel(@current, @feature) AS demand``.
  The **first** argument of a VG call in scenario SQL is the component
  index expression (the week being simulated, i.e. the graph axis); the
  remaining arguments are model arguments, evaluated from the parameter
  point. The Query Generator additionally injects the world seed.
* :class:`DerivedOutput` — any SQL expression over previously defined
  aliases, e.g. ``CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload``.

The axis parameter (``@current``) is special: rather than sweeping it as a
grid dimension, the engine evaluates *all* components of each VG world at
once and exposes the axis as the ``t`` column of the results table. This is
semantically identical to sweeping ``@current`` (the VG output at week w is
what ``@current = w`` would observe) but lets one world feed every week.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ScenarioError
from repro.core.parameters import ParameterSpace
from repro.sqldb.ast_nodes import Expression, Variable
from repro.sqldb.expressions import EvalContext, collect_variables, evaluate
from repro.vg.library import VGLibrary


@dataclass(frozen=True)
class VGOutput:
    """One VG-model output column of the scenario."""

    alias: str
    vg_name: str
    index_expr: Expression  # component index (normally Variable(axis))
    model_args: tuple[Expression, ...] = ()

    def model_arg_values(self, point: Mapping[str, Any]) -> tuple[Any, ...]:
        """Evaluate the model arguments at a parameter point."""
        context = EvalContext(variables=point)
        return tuple(evaluate(arg, context) for arg in self.model_args)


@dataclass(frozen=True)
class DerivedOutput:
    """One derived output column (SQL expression over earlier aliases)."""

    alias: str
    expression: Expression


@dataclass(frozen=True)
class GraphSeries:
    """One series of the online graph directive.

    ``kind`` is ``"EXPECT"`` or ``"EXPECT_STDDEV"``; ``style`` the rendering
    hints (``bold red`` etc.) carried through to the viz layer.
    """

    kind: str
    alias: str
    style: tuple[str, ...] = ()


@dataclass(frozen=True)
class GraphSpec:
    """``GRAPH OVER @axis EXPECT ... WITH ...`` metadata."""

    axis: str
    series: tuple[GraphSeries, ...]


@dataclass(frozen=True)
class OptimizeObjective:
    """One ``FOR MAX @p`` / ``FOR MIN @p`` objective term, in priority order."""

    direction: str  # "MAX" | "MIN"
    parameter: str


@dataclass(frozen=True)
class OptimizeSpec:
    """``OPTIMIZE SELECT ... WHERE <constraint> FOR ...`` metadata.

    ``constraint`` is an expression over axis-aggregated statistics, e.g.
    ``MAX(EXPECT overload) < 0.01`` — the outer MAX ranges over the axis
    (weeks), the inner EXPECT over Monte Carlo worlds.
    """

    select_parameters: tuple[str, ...]
    constraint: Optional[Expression]
    objectives: tuple[OptimizeObjective, ...]
    group_by: tuple[str, ...] = ()


class Scenario:
    """A fully specified business scenario."""

    def __init__(
        self,
        name: str,
        space: ParameterSpace,
        axis: str,
        outputs: Sequence[VGOutput | DerivedOutput],
        graph: Optional[GraphSpec] = None,
        optimize: Optional[OptimizeSpec] = None,
        source_sql: str = "",
        results_table: str = "results",
    ) -> None:
        self.name = name
        self.space = space
        self.axis = axis.lstrip("@").lower()
        self.outputs = tuple(outputs)
        self.graph = graph
        self.optimize = optimize
        self.source_sql = source_sql
        self.results_table = results_table
        self._validate()

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        if self.axis not in self.space:
            raise ScenarioError(f"axis parameter @{self.axis} is not declared")
        if not self.outputs:
            raise ScenarioError("scenario has no outputs")
        aliases: set[str] = set()
        saw_vg = False
        for output in self.outputs:
            alias = output.alias.lower()
            if alias in aliases:
                raise ScenarioError(f"duplicate output alias {output.alias!r}")
            if isinstance(output, VGOutput):
                saw_vg = True
                self._validate_vg_output(output)
            else:
                self._validate_derived_output(output, aliases)
            aliases.add(alias)
        if not saw_vg:
            raise ScenarioError("scenario needs at least one VG-model output")
        if self.graph is not None:
            if self.graph.axis.lstrip("@").lower() != self.axis:
                raise ScenarioError(
                    f"GRAPH OVER @{self.graph.axis} disagrees with axis @{self.axis}"
                )
            for series in self.graph.series:
                if series.alias.lower() not in aliases:
                    raise ScenarioError(f"graph series over unknown alias {series.alias!r}")
        if self.optimize is not None:
            for objective in self.optimize.objectives:
                if objective.parameter.lstrip("@").lower() not in self.space:
                    raise ScenarioError(
                        f"objective over undeclared parameter @{objective.parameter}"
                    )

    def _validate_vg_output(self, output: VGOutput) -> None:
        index_vars = collect_variables(output.index_expr)
        if index_vars != {self.axis}:
            raise ScenarioError(
                f"output {output.alias!r}: the first VG argument must reference "
                f"exactly the axis parameter @{self.axis}, found {sorted(index_vars)}"
            )
        for arg in output.model_args:
            for var in collect_variables(arg):
                if var == self.axis:
                    raise ScenarioError(
                        f"output {output.alias!r}: model arguments may not use the "
                        f"axis parameter @{self.axis}"
                    )
                if var not in self.space:
                    raise ScenarioError(
                        f"output {output.alias!r}: undeclared parameter @{var}"
                    )

    def _validate_derived_output(self, output: DerivedOutput, known: set[str]) -> None:
        for var in collect_variables(output.expression):
            if var != self.axis and var not in self.space:
                raise ScenarioError(
                    f"derived output {output.alias!r}: undeclared parameter @{var}"
                )

    # -- views ---------------------------------------------------------------

    @property
    def vg_outputs(self) -> tuple[VGOutput, ...]:
        return tuple(o for o in self.outputs if isinstance(o, VGOutput))

    @property
    def derived_outputs(self) -> tuple[DerivedOutput, ...]:
        return tuple(o for o in self.outputs if isinstance(o, DerivedOutput))

    @property
    def output_aliases(self) -> tuple[str, ...]:
        return tuple(o.alias for o in self.outputs)

    @property
    def sweep_space(self) -> ParameterSpace:
        """The parameter space excluding the graph axis."""
        return self.space.without(self.axis)

    def vg_output(self, alias: str) -> VGOutput:
        """The VG output named ``alias`` (case-insensitive)."""
        target = alias.lower()
        for output in self.vg_outputs:
            if output.alias.lower() == target:
                return output
        raise ScenarioError(f"no VG output named {alias!r}")

    def validate_sweep_point(self, point: Mapping[str, Any]) -> dict[str, Any]:
        """Canonicalize a sweep point: strip the axis, validate the rest.

        The single definition of point normalization — every entry point
        (engine evaluation, shard workers, the serve layer) must agree on
        it or reuse keys silently diverge.
        """
        return self.sweep_space.validate_point(
            {
                k: v
                for k, v in point.items()
                if str(k).lstrip("@").lower() != self.axis
            }
        )

    def axis_values(self) -> tuple[Any, ...]:
        return self.space.parameter(self.axis).values

    def check_against_library(self, library: VGLibrary) -> None:
        """Verify every referenced VG-Function exists with matching arity
        and that the axis domain fits inside each model's component range."""
        axis_values = self.axis_values()
        for output in self.vg_outputs:
            if output.vg_name not in library:
                raise ScenarioError(
                    f"output {output.alias!r} references unknown VG-Function "
                    f"{output.vg_name!r}"
                )
            function = library.get(output.vg_name)
            if len(output.model_args) != len(function.arg_names):
                raise ScenarioError(
                    f"output {output.alias!r}: {output.vg_name} expects "
                    f"{len(function.arg_names)} model args "
                    f"({', '.join(function.arg_names)}), scenario passes "
                    f"{len(output.model_args)}"
                )
            bad = [v for v in axis_values if not (0 <= int(v) < function.n_components)]
            if bad:
                raise ScenarioError(
                    f"axis values {bad} outside component range "
                    f"[0, {function.n_components}) of {output.vg_name}"
                )

    def __repr__(self) -> str:
        return (
            f"Scenario({self.name!r}, axis=@{self.axis}, "
            f"outputs={list(self.output_aliases)}, "
            f"parameters={list(self.space.names)})"
        )


def axis_variable(scenario: Scenario) -> Variable:
    """The AST node referring to the scenario's axis parameter."""
    return Variable(scenario.axis)

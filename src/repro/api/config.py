"""Typed, layered client configuration.

One :class:`ClientConfig` replaces the constructor sprawl of the four
legacy entrypoints: nine frozen section dataclasses — sampling, reuse,
basis store, serving, resilience, shard transport, result cache, adaptive
sampling, observability — compose into one validated object.
Every knob that used to live in the flat :class:`~repro.core.engine.
ProphetConfig` (or in ``EvaluationService``/CLI keyword arguments) has
exactly one home here, and :meth:`ClientConfig.engine_config` derives the
flat config back, so every existing constructor keeps working unchanged.

Round-trips: :meth:`ClientConfig.to_mapping` / :meth:`ClientConfig.
from_mapping` convert to and from plain nested mappings (config files,
service payloads). The portable form routes every leaf through
:mod:`repro.core.argcodec`'s tagged encoding, so a JSON hop preserves
concrete types exactly — bool vs int, tuples, non-finite floats —
``ClientConfig.from_mapping(cfg.to_mapping(portable=True)) == cfg`` always.

Validation happens at construction (the dataclasses are frozen): an
unknown sampling backend, a negative basis cap, or a bad executor kind
raises :class:`~repro.errors.ScenarioError` here, not deep in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Optional

from repro.core.argcodec import decode_value, encode_value
from repro.core.engine import ProphetConfig
from repro.core.sampling import SAMPLING_BACKENDS
from repro.errors import ScenarioError
from repro.obs.config import ObsConfig
from repro.serve.resilience import ResilienceConfig
from repro.serve.transport import TransportConfig

#: Executor kinds the serving section accepts (see repro.serve.executors).
EXECUTOR_KINDS: tuple[str, ...] = ("auto", "process", "inline")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


@dataclass(frozen=True)
class SamplingConfig:
    """The Monte Carlo sampling plane: worlds, seeds, backend, refinement."""

    n_worlds: int = 200
    base_seed: int = 42
    backend: str = "batched"
    refinement_first: int = 25
    refinement_growth: float = 2.0

    def __post_init__(self) -> None:
        _require(
            self.backend in SAMPLING_BACKENDS,
            f"unknown sampling backend {self.backend!r} "
            f"(known: {', '.join(SAMPLING_BACKENDS)})",
        )
        _require(self.n_worlds >= 1, f"n_worlds must be >= 1, got {self.n_worlds}")
        _require(
            self.refinement_first >= 1,
            f"refinement_first must be >= 1, got {self.refinement_first}",
        )
        _require(
            self.refinement_growth > 1.0,
            f"refinement_growth must be > 1, got {self.refinement_growth}",
        )


@dataclass(frozen=True)
class ReuseConfig:
    """Fingerprint-driven computation reuse (the paper's core mechanism)."""

    fingerprint_seeds: int = 8
    correlation_tolerance: float = 1e-6
    min_mapped_fraction: float = 0.05
    enable_stats_cache: bool = True

    def __post_init__(self) -> None:
        _require(
            self.fingerprint_seeds >= 1,
            f"fingerprint_seeds must be >= 1, got {self.fingerprint_seeds}",
        )
        _require(
            self.correlation_tolerance >= 0.0,
            f"correlation_tolerance must be >= 0, got {self.correlation_tolerance}",
        )
        _require(
            0.0 <= self.min_mapped_fraction <= 1.0,
            f"min_mapped_fraction must be in [0, 1], got {self.min_mapped_fraction}",
        )


@dataclass(frozen=True)
class StoreConfig:
    """The tiered basis store: memory-tier bounds and the disk spill tier."""

    basis_cap: Optional[int] = None
    basis_byte_cap: Optional[int] = None
    basis_dir: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            self.basis_cap is None or self.basis_cap >= 0,
            f"basis_cap must be >= 0 or None, got {self.basis_cap}",
        )
        _require(
            self.basis_byte_cap is None or self.basis_byte_cap >= 0,
            f"basis_byte_cap must be >= 0 or None, got {self.basis_byte_cap}",
        )


@dataclass(frozen=True)
class ServeConfig:
    """The sharded evaluation service: worker pool and shard geometry.

    All defaults mean "in-process, sequential" — a default-constructed
    section leaves :attr:`enabled` false and the client runs on a plain
    engine. Setting any knob (or an explicit executor kind) opts into the
    serve backend.
    """

    workers: Optional[int] = None
    shards: Optional[int] = None
    executor: str = "auto"
    min_shard_worlds: int = 8
    share_bases: bool = True

    def __post_init__(self) -> None:
        _require(
            self.executor in EXECUTOR_KINDS,
            f"unknown executor kind {self.executor!r} "
            f"(known: {', '.join(EXECUTOR_KINDS)})",
        )
        _require(
            self.workers is None or self.workers >= 1,
            f"workers must be >= 1 or None, got {self.workers}",
        )
        _require(
            self.shards is None or self.shards >= 1,
            f"shards must be >= 1 or None, got {self.shards}",
        )
        _require(
            self.min_shard_worlds >= 1,
            f"min_shard_worlds must be >= 1, got {self.min_shard_worlds}",
        )

    @property
    def enabled(self) -> bool:
        """Did the caller ask for the serve backend at all?"""
        return (
            self.workers is not None
            or self.shards is not None
            or self.executor != "auto"
        )


@dataclass(frozen=True)
class CacheConfig:
    """The persistent cross-run result cache."""

    dir: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            self.dir is None or (isinstance(self.dir, str) and bool(self.dir)),
            f"cache dir must be a non-empty path string or None, "
            f"got {self.dir!r}",
        )

    @property
    def enabled(self) -> bool:
        return self.dir is not None


@dataclass(frozen=True)
class AdaptiveConfig:
    """Adaptive anytime sampling: the round protocol's stopping rule.

    Setting ``target_ci`` turns adaptive sampling on: sweep points run in
    growing world-prefix rounds and retire once every output series'
    confidence half-width is at most ``target_ci``; the budget allocator
    reassigns their unspent worlds to unresolved points. Stopping is a pure
    function of accumulated statistics — never wall-clock — so adaptive
    runs are deterministic and shard-geometry independent.

    ``min_worlds`` / ``max_worlds`` / ``round_growth`` bound the round
    ladder (first round, fixed per-point budget, geometric growth). They
    absorb — and are the preferred spellings over — the flat
    ``refinement_first`` / ``refinement_growth`` knobs on
    :class:`SamplingConfig`, which they default to when left ``None``
    (``max_worlds`` defaults to ``n_worlds``).
    """

    target_ci: Optional[float] = None
    min_worlds: Optional[int] = None
    max_worlds: Optional[int] = None
    round_growth: Optional[float] = None

    def __post_init__(self) -> None:
        _require(
            self.target_ci is None or self.target_ci > 0.0,
            f"target_ci must be > 0 or None, got {self.target_ci}",
        )
        _require(
            self.min_worlds is None or self.min_worlds >= 1,
            f"min_worlds must be >= 1 or None, got {self.min_worlds}",
        )
        _require(
            self.max_worlds is None or self.max_worlds >= 1,
            f"max_worlds must be >= 1 or None, got {self.max_worlds}",
        )
        _require(
            self.round_growth is None or self.round_growth > 1.0,
            f"round_growth must be > 1 or None, got {self.round_growth}",
        )

    @property
    def enabled(self) -> bool:
        """Adaptive stopping is on exactly when a target is set."""
        return self.target_ci is not None


#: Section name -> section dataclass, in rendering order.
_SECTIONS: dict[str, type] = {
    "sampling": SamplingConfig,
    "reuse": ReuseConfig,
    "store": StoreConfig,
    "serve": ServeConfig,
    "resilience": ResilienceConfig,
    "transport": TransportConfig,
    "cache": CacheConfig,
    "adaptive": AdaptiveConfig,
    "obs": ObsConfig,
}


@dataclass(frozen=True)
class ClientConfig:
    """The one configuration object behind a :class:`~repro.api.ProphetClient`.

    Composes the nine sections; backends — in-process engine vs sharded
    service, loop vs batched sampling, tiered store, fault-tolerance
    ladder, result cache — are pure configuration here, never separate
    constructor dialects. The resilience section is defined next to the
    machinery it configures (:mod:`repro.serve.resilience`) and composed
    here like any other.
    """

    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    reuse: ReuseConfig = field(default_factory=ReuseConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        for name, section_type in _SECTIONS.items():
            value = getattr(self, name)
            _require(
                isinstance(value, section_type),
                f"config section {name!r} must be a {section_type.__name__}, "
                f"got {type(value).__name__}",
            )

    # -- the back-compat shim ----------------------------------------------

    def engine_config(self) -> ProphetConfig:
        """Derive the legacy flat :class:`ProphetConfig`.

        This is the compatibility contract: a client configured with the
        defaults drives engines that are bit-identical to ones built from a
        default ``ProphetConfig`` — every legacy constructor keeps working
        against the same semantics.
        """
        return ProphetConfig(
            n_worlds=self.sampling.n_worlds,
            base_seed=self.sampling.base_seed,
            fingerprint_seeds=self.reuse.fingerprint_seeds,
            correlation_tolerance=self.reuse.correlation_tolerance,
            min_mapped_fraction=self.reuse.min_mapped_fraction,
            refinement_first=self.sampling.refinement_first,
            refinement_growth=self.sampling.refinement_growth,
            enable_stats_cache=self.reuse.enable_stats_cache,
            basis_cap=self.store.basis_cap,
            basis_byte_cap=self.store.basis_byte_cap,
            basis_dir=self.store.basis_dir,
            sampling_backend=self.sampling.backend,
        )

    @classmethod
    def from_engine_config(
        cls,
        config: ProphetConfig,
        *,
        serve: Optional[ServeConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        transport: Optional[TransportConfig] = None,
        cache: Optional[CacheConfig] = None,
    ) -> "ClientConfig":
        """Lift a legacy flat config into the layered form (lossless)."""
        return cls(
            sampling=SamplingConfig(
                n_worlds=config.n_worlds,
                base_seed=config.base_seed,
                backend=config.sampling_backend,
                refinement_first=config.refinement_first,
                refinement_growth=config.refinement_growth,
            ),
            reuse=ReuseConfig(
                fingerprint_seeds=config.fingerprint_seeds,
                correlation_tolerance=config.correlation_tolerance,
                min_mapped_fraction=config.min_mapped_fraction,
                enable_stats_cache=config.enable_stats_cache,
            ),
            store=StoreConfig(
                basis_cap=config.basis_cap,
                basis_byte_cap=config.basis_byte_cap,
                basis_dir=config.basis_dir,
            ),
            serve=serve or ServeConfig(),
            resilience=resilience or ResilienceConfig(),
            transport=transport or TransportConfig(),
            cache=cache or CacheConfig(),
        )

    # -- mapping round-trips ------------------------------------------------

    def to_mapping(self, *, portable: bool = False) -> dict[str, dict[str, Any]]:
        """Nested plain mapping of every knob, section by section.

        With ``portable=True`` every leaf is tagged through
        :func:`repro.core.argcodec.encode_value`, making the result safe to
        push through JSON and back without losing concrete types.
        """
        mapping: dict[str, dict[str, Any]] = {}
        for name in _SECTIONS:
            section = getattr(self, name)
            mapping[name] = {
                f.name: (
                    encode_value(getattr(section, f.name))
                    if portable
                    else getattr(section, f.name)
                )
                for f in fields(section)
            }
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ClientConfig":
        """Rebuild a config from :meth:`to_mapping` output (either form).

        Unknown sections or keys raise :class:`ScenarioError` — a typo in a
        config file must not silently fall back to a default. Tagged leaves
        (the portable form) are detected per-value and decoded exactly.
        """
        unknown_sections = set(mapping) - set(_SECTIONS)
        _require(
            not unknown_sections,
            f"unknown config section(s): {sorted(unknown_sections)} "
            f"(known: {sorted(_SECTIONS)})",
        )
        kwargs: dict[str, Any] = {}
        for name, section_type in _SECTIONS.items():
            if name not in mapping:
                continue
            payload = mapping[name]
            _require(
                isinstance(payload, Mapping),
                f"config section {name!r} must be a mapping, "
                f"got {type(payload).__name__}",
            )
            known = {f.name for f in fields(section_type)}
            unknown = set(payload) - known
            _require(
                not unknown,
                f"unknown key(s) in config section {name!r}: "
                f"{sorted(unknown)} (known: {sorted(known)})",
            )
            kwargs[name] = section_type(
                **{key: _plain_value(value) for key, value in payload.items()}
            )
        return cls(**kwargs)

    # -- fluent section replacement -----------------------------------------

    def replace_section(self, name: str, **changes: Any) -> "ClientConfig":
        """A copy with one section's fields replaced (validated)."""
        _require(
            name in _SECTIONS,
            f"unknown config section {name!r} (known: {sorted(_SECTIONS)})",
        )
        return replace(self, **{name: replace(getattr(self, name), **changes)})

    def round_plan(self) -> "RoundPlan":
        """The adaptive section's round ladder, with sampling fallbacks.

        ``max_worlds`` defaults to the fixed budget ``sampling.n_worlds``;
        ``min_worlds`` / ``round_growth`` default to the legacy flat
        ``refinement_first`` / ``refinement_growth`` spellings they absorb.
        """
        from repro.core.rounds import RoundPlan

        n_worlds = (
            self.adaptive.max_worlds
            if self.adaptive.max_worlds is not None
            else self.sampling.n_worlds
        )
        first = (
            self.adaptive.min_worlds
            if self.adaptive.min_worlds is not None
            else min(self.sampling.refinement_first, n_worlds)
        )
        growth = (
            self.adaptive.round_growth
            if self.adaptive.round_growth is not None
            else self.sampling.refinement_growth
        )
        _require(
            first <= n_worlds,
            f"min_worlds ({first}) must not exceed max_worlds ({n_worlds})",
        )
        return RoundPlan(n_worlds=n_worlds, first=first, growth=growth)

    def wants_service(self) -> bool:
        """Does this config require the serve backend (vs a bare engine)?

        A non-default resilience section counts: deadlines, retry budgets,
        and rescue semantics only exist in the service's shard dispatcher,
        so asking for them is asking for the service. The same holds for a
        non-default transport section — the shared-memory shard transport
        only exists between the service coordinator and its workers. The
        obs section never counts — observability attaches to whichever
        backend the rest of the config selects.
        """
        return (
            self.serve.enabled
            or self.cache.enabled
            or self.resilience != ResilienceConfig()
            or self.transport != TransportConfig()
        )


def _plain_value(value: Any) -> Any:
    """Decode one mapping leaf: tagged (portable) payloads pass through
    argcodec; plain values are used as-is."""
    if isinstance(value, Mapping) and "t" in value:
        return decode_value(dict(value))
    return value

"""One merged statistics surface for every backend.

PRs 1–4 grew four stats dialects: the SQL executor's ``ExecutionStats``
(plan cache, vectorization, sampling-plane dispatch), the Storage Manager's
basis counters plus the tier's eviction/spill/fault stats, the engine's
week-memo counters, and — behind the serve backend — ``ServiceStats`` and
the scheduler's job counters. :class:`StatsReport` rolls all of them into
one frozen snapshot with a stable :meth:`to_json` and the human rendering
the CLI ``--stats`` flag prints.

Determinism contract: the report carries **counters only** — never
wall-clock — so two identical runs produce byte-identical ``to_json()``
output (asserted by the API test suite).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.engine import ProphetEngine
from repro.obs.report import TimingReport


@dataclass(frozen=True)
class StatsReport:
    """A point-in-time snapshot of every counter behind one client.

    ``service`` and ``scheduler`` are ``None`` for clients running on a
    bare in-process engine that never built a serve backend.

    ``timing`` is the wall-clock side (:class:`~repro.obs.TimingReport`):
    it rides on the report for rendering but is deliberately **excluded**
    from :meth:`to_dict` / :meth:`to_json`, which stay counters-only and
    byte-stable.
    """

    execution: dict[str, Any]
    sampling: dict[str, Any]
    basis: dict[str, Any]
    week_memo: dict[str, Any]
    service: Optional[dict[str, Any]] = None
    scheduler: Optional[dict[str, Any]] = None
    #: Per-point adaptive outcomes (worlds spent, rounds, CI half-widths).
    #: Present only after an adaptive sweep ran — fixed-budget runs keep
    #: their pre-adaptive JSON byte-identical.
    adaptive: Optional[dict[str, Any]] = None
    timing: Optional[TimingReport] = None

    @classmethod
    def gather(
        cls,
        engine: ProphetEngine,
        service: Any = None,
        scheduler: Any = None,
        tracer: Any = None,
    ) -> "StatsReport":
        """Snapshot the counters of one engine (plus serve layers, if any)."""
        stats = engine.executor.stats
        tier = engine.storage.tier
        execution = {
            "statements": stats.statements,
            "plan_cache_hits": stats.plan_cache_hits,
            "plan_cache_misses": stats.plan_cache_misses,
            "vectorized_selects": stats.vectorized_selects,
            "fallback_selects": stats.fallback_selects,
            "rows_vectorized": stats.rows_vectorized,
            "rows_fallback": stats.rows_fallback,
        }
        sampling = {
            "backend": engine.config.sampling_backend,
            "sampled_batched": stats.sampled_batched,
            "sampled_fallback": stats.sampled_fallback,
            "parity_fallbacks": engine.library.total_parity_fallbacks(),
        }
        basis = {
            "exact_hits": engine.storage.exact_hits,
            "mapped_hits": engine.storage.mapped_hits,
            "misses": engine.storage.misses,
            "resident": tier.resident_count,
            "resident_bytes": tier.resident_bytes,
            "spilled": tier.spilled_count,
            **{f"tier_{k}": v for k, v in tier.stats.as_dict().items()},
        }
        week_memo = {
            "hits": engine.week_stats_hits,
            "misses": engine.week_stats_misses,
        }
        service_dict = None
        scheduler_dict = None
        if service is not None:
            service_dict = {
                "executor_kind": service.executor.kind,
                "executor_workers": service.executor.workers,
                "shard_transport": service.transport.shard_transport,
                # Stale-tmp files swept when the result cache opened — a
                # deterministic counter (a clean run sweeps zero), safe for
                # the byte-stable JSON.
                "cache_tmp_swept": (
                    service.cache.tmp_swept if service.cache is not None else 0
                ),
                **service.stats.as_dict(),
            }
        adaptive_dict = None
        if scheduler is not None:
            scheduler_dict = {
                "jobs_completed": scheduler.jobs_completed,
                "jobs_retried": scheduler.jobs_retried,
                "dedup_hits": scheduler.dedup_hits,
                "jobs_retired_early": scheduler.jobs_retired_early,
                "worlds_spent": scheduler.worlds_spent,
                "worlds_budgeted": scheduler.worlds_budgeted,
            }
            adaptive_dict = scheduler.adaptive_report()
        return cls(
            execution=execution,
            sampling=sampling,
            basis=basis,
            week_memo=week_memo,
            service=service_dict,
            scheduler=scheduler_dict,
            adaptive=adaptive_dict,
            timing=TimingReport.gather(engine, service=service, tracer=tracer),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Nested plain dict; absent serve layers are omitted, not null.

        ``timing`` is never included — wall-clock would break the
        byte-stability contract. Serialize it separately via
        ``report.timing.to_dict()`` when you want it.
        """
        payload: dict[str, Any] = {
            "execution": dict(self.execution),
            "sampling": dict(self.sampling),
            "basis": dict(self.basis),
            "week_memo": dict(self.week_memo),
        }
        if self.service is not None:
            payload["service"] = dict(self.service)
        if self.scheduler is not None:
            payload["scheduler"] = dict(self.scheduler)
        if self.adaptive is not None:
            payload["adaptive"] = dict(self.adaptive)
        return payload

    def to_json(self) -> str:
        """Stable JSON: sorted keys, counters only — identical runs produce
        identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True)

    # -- human rendering -----------------------------------------------------

    def render(self) -> str:
        """The ``--stats`` block, exactly as the CLI prints it."""
        e, s, b, w = self.execution, self.sampling, self.basis, self.week_memo
        plan_total = e["plan_cache_hits"] + e["plan_cache_misses"]
        plan_rate = e["plan_cache_hits"] / plan_total if plan_total else 0.0
        lines = [
            "execution stats:",
            f"  plan cache: {e['plan_cache_hits']} hits / "
            f"{e['plan_cache_misses']} misses ({plan_rate:.1%})",
            f"  selects: {e['vectorized_selects']} vectorized "
            f"({e['rows_vectorized']} rows) / {e['fallback_selects']} "
            f"fallback ({e['rows_fallback']} rows)",
            f"  sampling: {s['sampled_batched']} worlds batched / "
            f"{s['sampled_fallback']} worlds per-world loop "
            f"({s['backend']} backend, "
            f"{s['parity_fallbacks']} parity-guard fallbacks)",
            f"  basis reuse: {b['exact_hits']} exact / "
            f"{b['mapped_hits']} mapped / {b['misses']} fresh",
            f"  basis tier: {b['resident']} resident "
            f"({b['resident_bytes'] / 1024:.0f} KiB) / {b['spilled']} spilled; "
            f"{b['tier_evictions']} evicted, {b['tier_spills']} spills, "
            f"{b['tier_faults']} faults, {b['tier_dropped']} dropped",
            f"  week memo: {w['hits']} hits / {w['misses']} misses",
        ]
        if self.service is not None:
            lines.extend(self._render_service())
        if self.timing is not None:
            lines.append(self.timing.render())
        return "\n".join(lines)

    def _render_service(self) -> list[str]:
        sv = self.service or {}
        sc = self.scheduler or {}
        cache_total = sv["cache_hits"] + sv["cache_misses"]
        cache_rate = sv["cache_hits"] / cache_total if cache_total else 0.0
        lines = [
            "service stats:",
            f"  result cache: {sv['cache_hits']} hits / "
            f"{sv['cache_misses']} misses ({cache_rate:.1%}), "
            f"{sv.get('cache_tmp_swept', 0)} stale tmp swept",
            f"  shards: {sv['shard_tasks']} tasks over "
            f"{sv['sampled_worlds']} sampled worlds "
            f"({sv['executor_kind']} x{sv['executor_workers']})",
            f"  shard reuse: {sv['shard_exact_hits']} exact / "
            f"{sv['shard_mapped_hits']} mapped / {sv['shard_fresh']} fresh "
            f"({sv['snapshot_bases_shipped']} snapshot bases shipped)",
            f"  shard sampling: {sv['sampled_batched']} worlds batched / "
            f"{sv['sampled_fallback']} worlds per-world loop",
            f"  resilience: {sv['shard_retries']} shard retries / "
            f"{sv['shard_timeouts']} timeouts / "
            f"{sv['pool_rebuilds']} pool rebuilds / "
            f"{sv['inline_rescues']} inline rescues",
            f"  transport: {sv.get('shard_transport', 'pickle')} — "
            f"{sv.get('bytes_zero_copy', 0)} B zero-copy / "
            f"{sv.get('bytes_shipped', 0)} B pickled, "
            f"{sv.get('segments_leased', 0)} segments leased / "
            f"{sv.get('segments_reclaimed', 0)} reclaimed, "
            f"{sv.get('transport_fallbacks', 0)} fallbacks",
        ]
        if self.scheduler is not None:
            lines.append(
                f"  scheduler: {sc['jobs_completed']} jobs, "
                f"{sc['jobs_retried']} retried, "
                f"{sc['dedup_hits']} deduplicated"
            )
            if sc.get("worlds_budgeted", 0):
                lines.append(
                    f"  adaptive: {sc['jobs_retired_early']} points retired "
                    f"early, {sc['worlds_spent']} worlds spent of "
                    f"{sc['worlds_budgeted']} budgeted"
                )
        if self.adaptive is not None:
            points = self.adaptive.get("points", [])
            converged = sum(1 for p in points if p.get("converged"))
            lines.append(
                f"  adaptive points: {len(points)} swept, {converged} "
                f"converged at target_ci={self.adaptive.get('target_ci')}"
            )
        return lines

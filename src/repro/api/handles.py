"""The three uniform result handles a :class:`~repro.api.ProphetClient` hands out.

* :class:`InteractiveHandle` — sliders and progressive refresh over one
  :class:`~repro.core.online.OnlineSession` (the demo GUI, programmatic);
* :class:`SweepHandle` — a **streaming** iterator over a scheduled sweep:
  each iteration runs exactly one queued job (in-flight duplicates
  coalesce, the result cache answers repeats) and yields its
  :class:`SweepResult` the moment it lands, so callers render progress
  without waiting for the whole grid;
* :class:`OptimizeHandle` — the scenario's OPTIMIZE block over one
  :class:`~repro.core.offline.OfflineOptimizer`.

Every handle resolves identically against the in-process engine and the
sharded serve backend — bit-identical by the serve parity contract — and
none of them owns private counters: :meth:`repro.api.ProphetClient.stats`
is the one stats surface for all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional

import numpy as np

from repro.core.aggregator import AxisStatistics
from repro.core.rounds import ConvergenceTracker
from repro.core.engine import PointEvaluation, ProphetEngine
from repro.core.offline import OfflineOptimizer, OptimizationResult
from repro.core.online import GraphView, InteractionLog, OnlineSession
from repro.errors import ServeError
from repro.serve.scheduler import (
    DONE,
    FAILED,
    AdaptivePointState,
    AdaptiveSweepJob,
    Job,
    Scheduler,
)


class InteractiveHandle:
    """Sliders + progressive refresh, backed by the client's engine or service."""

    def __init__(self, session: OnlineSession) -> None:
        self._session = session

    # -- sliders ------------------------------------------------------------

    @property
    def sliders(self) -> dict[str, Any]:
        return self._session.sliders

    def set_slider(self, name: str, value: Any) -> None:
        self._session.set_slider(name, value)

    def set_sliders(self, values: Mapping[str, Any]) -> None:
        self._session.set_sliders(values)

    # -- evaluation ---------------------------------------------------------

    def refresh(self, *, reuse: bool = True) -> GraphView:
        return self._session.refresh(reuse=reuse)

    def refresh_progressive(self, *, reuse: bool = True) -> list[GraphView]:
        return self._session.refresh_progressive(reuse=reuse)

    def explore_proactively(self, max_points: int | None = None) -> int:
        return self._session.explore_proactively(max_points)

    # -- observability ------------------------------------------------------

    @property
    def log(self) -> InteractionLog:
        return self._session.log

    @property
    def tracker(self) -> ConvergenceTracker:
        return self._session.tracker

    def graph_series(self, view: GraphView) -> dict[str, np.ndarray]:
        return self._session.graph_series(view)

    @property
    def session(self) -> OnlineSession:
        """The underlying session (escape hatch for advanced callers)."""
        return self._session


@dataclass(frozen=True)
class SweepResult:
    """One finished sweep point, yielded as soon as its job completes.

    The adaptive fields (``worlds_spent`` onward) are ``None`` on
    fixed-budget sweeps and populated by :class:`AdaptiveSweepHandle`.
    """

    index: int
    point: dict[str, Any]
    statistics: Optional[AxisStatistics]
    evaluation: Optional[PointEvaluation]
    deduplicated: bool  #: coalesced onto an identical in-flight job
    error: Optional[str]
    elapsed_seconds: float
    worlds_spent: Optional[int] = None
    rounds: Optional[int] = None
    max_ci: Optional[float] = None
    retired_early: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepHandle:
    """A streaming sweep: iterate to run, results arrive job by job.

    Jobs are queued at construction (so ``len(handle)`` is known up front
    and identical points have already coalesced); each ``next()`` steps the
    scheduler until the next submitted point — in submission order — has a
    result, then yields it. Coalesced followers resolve together with
    their primary, so a handle over N points always yields N results.

    Failed points yield a :class:`SweepResult` with ``error`` set instead
    of raising, so one bad point does not abort a long sweep; call
    :meth:`raise_failures` (or check ``result.ok``) for strictness.
    """

    def __init__(self, scheduler: Scheduler, jobs: list[Job]) -> None:
        self._scheduler = scheduler
        self._jobs = jobs
        self._cursor = 0
        self.results: list[SweepResult] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SweepResult]:
        return self

    def __next__(self) -> SweepResult:
        if self._cursor >= len(self._jobs):
            raise StopIteration
        job = self._jobs[self._cursor]
        while job.status not in (DONE, FAILED):
            if self._scheduler.run_next() is None:
                # Queue drained yet this job never resolved — a coalesced
                # follower whose primary was submitted outside this sweep
                # and never ran. Surface it rather than spinning.
                raise ServeError(
                    f"sweep job {job.id} never completed (status: {job.status})"
                )
        result = SweepResult(
            index=self._cursor,
            point=dict(job.point),
            statistics=job.result.statistics if job.result is not None else None,
            evaluation=job.result,
            deduplicated=job.coalesced_with is not None,
            error=job.error,
            elapsed_seconds=job.elapsed_seconds,
        )
        self._cursor += 1
        self.results.append(result)
        return result

    # -- conveniences --------------------------------------------------------

    def run(self) -> list[SweepResult]:
        """Drain the whole sweep (the non-streaming spelling)."""
        for _ in self:
            pass
        return self.results

    @property
    def failures(self) -> list[SweepResult]:
        return [result for result in self.results if not result.ok]

    def raise_failures(self) -> None:
        """Re-raise the first failed point's original exception, if any."""
        for index, result in enumerate(self.results):
            if result.ok:
                continue
            exception = self._jobs[result.index].exception
            if exception is not None:
                raise exception
            raise ServeError(f"sweep point {index} failed: {result.error}")


class AdaptiveSweepHandle:
    """A streaming *adaptive* sweep: points retire as their CI resolves.

    Mirrors :class:`SweepHandle` — iterate to run, one :class:`SweepResult`
    per submitted point, in submission order — but the work underneath is
    the scheduler's CI budget allocator: each pump runs one round, points
    whose target half-width is met retire early (freeing budget for
    unresolved points), and the yielded results carry the adaptive fields
    (``worlds_spent``, ``rounds``, ``max_ci``, ``retired_early``).

    A point is yielded once its outcome is final: converged, failed, or
    the allocator has spent everything it will ever spend on it. Points
    that never converge therefore yield only when the whole sweep is done
    — their budget could have grown until the very last reallocation.
    """

    def __init__(self, scheduler: Scheduler, sweep: AdaptiveSweepJob) -> None:
        self._scheduler = scheduler
        self._sweep = sweep
        self._cursor = 0
        self.results: list[SweepResult] = []

    def __len__(self) -> int:
        return len(self._sweep.states)

    def __iter__(self) -> Iterator[SweepResult]:
        return self

    def __next__(self) -> SweepResult:
        states = self._sweep.states
        if self._cursor >= len(states):
            raise StopIteration
        state = states[self._cursor]
        while not self._resolved(state):
            if not self._scheduler.advance_adaptive(self._sweep):
                break
        evaluation = state.evaluator.result
        result = SweepResult(
            index=self._cursor,
            point=dict(state.point),
            statistics=evaluation.statistics if evaluation is not None else None,
            evaluation=evaluation,
            deduplicated=False,
            error=state.error,
            elapsed_seconds=0.0,
            worlds_spent=state.evaluator.worlds_spent,
            rounds=len(state.evaluator.rounds),
            max_ci=state.evaluator.max_ci,
            retired_early=state.retired_early,
        )
        self._cursor += 1
        self.results.append(result)
        return result

    @staticmethod
    def _resolved(state: AdaptivePointState) -> bool:
        """Is this point's outcome final (no later round can change it)?"""
        return state.finalized and (state.evaluator.converged or state.failed)

    # -- conveniences --------------------------------------------------------

    def run(self) -> list[SweepResult]:
        """Drain the whole adaptive sweep (the non-streaming spelling)."""
        for _ in self:
            pass
        return self.results

    @property
    def sweep(self) -> AdaptiveSweepJob:
        """The scheduler-level sweep (escape hatch: budget, per-point state)."""
        return self._sweep

    @property
    def failures(self) -> list[SweepResult]:
        return [result for result in self.results if not result.ok]

    def raise_failures(self) -> None:
        """Re-raise the first failed point's original exception, if any."""
        for index, result in enumerate(self.results):
            if result.ok:
                continue
            exception = self._sweep.states[result.index].exception
            if exception is not None:
                raise exception
            raise ServeError(f"sweep point {index} failed: {result.error}")


class OptimizeHandle:
    """The scenario's OPTIMIZE block, runnable against either backend."""

    def __init__(self, optimizer: OfflineOptimizer) -> None:
        self._optimizer = optimizer
        self.result: Optional[OptimizationResult] = None

    def run(
        self,
        *,
        reuse: bool = True,
        progress: Optional[Callable[..., None]] = None,
    ) -> OptimizationResult:
        """Sweep the grid and select the best feasible point."""
        self.result = self._optimizer.run(reuse=reuse, progress=progress)
        return self.result

    def best_point(self) -> dict[str, Any]:
        """The winning point of the last :meth:`run` (raises if infeasible)."""
        if self.result is None:
            raise ServeError("optimize handle has not run yet; call run()")
        return self.result.best_point()

    @property
    def engine(self) -> ProphetEngine:
        """The engine behind the sweep (escape hatch for drill-downs)."""
        return self._optimizer.engine

    @property
    def optimizer(self) -> OfflineOptimizer:
        return self._optimizer

"""``repro.api`` — the public client surface of the Fuzzy Prophet reproduction.

Everything a caller needs lives here and only here:

* :class:`ProphetClient` — ``open(scenario, library, config=...)`` plus the
  fluent ``with_serving`` / ``with_cache`` / ``with_basis_store`` /
  ``with_sampling`` / ``with_adaptive`` / ``with_resilience`` /
  ``with_transport`` helpers;
* the typed layered configuration — :class:`ClientConfig` composing
  :class:`SamplingConfig`, :class:`ReuseConfig`, :class:`StoreConfig`,
  :class:`ServeConfig`, :class:`ResilienceConfig`, :class:`TransportConfig`,
  :class:`CacheConfig`, :class:`AdaptiveConfig`, :class:`ObsConfig`;
* the uniform handles — :class:`InteractiveHandle`, :class:`SweepHandle`
  and :class:`AdaptiveSweepHandle` (streaming :class:`SweepResult`
  iterators; the adaptive one retires points as their CI target resolves),
  :class:`OptimizeHandle`;
* the one stats surface — :class:`StatsReport`, carrying the wall-clock
  :class:`TimingReport` separately from its byte-stable counter JSON.

``__all__`` is the public contract: the API surface snapshot test pins it,
so accidental export changes fail CI instead of shipping.
"""

from repro.api.client import ProphetClient
from repro.api.config import (
    AdaptiveConfig,
    CacheConfig,
    ClientConfig,
    ResilienceConfig,
    ReuseConfig,
    SamplingConfig,
    ServeConfig,
    StoreConfig,
    TransportConfig,
)
from repro.api.handles import (
    AdaptiveSweepHandle,
    InteractiveHandle,
    OptimizeHandle,
    SweepHandle,
    SweepResult,
)
from repro.api.stats import StatsReport
from repro.obs import ObsConfig, TimingReport

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSweepHandle",
    "CacheConfig",
    "ClientConfig",
    "InteractiveHandle",
    "ObsConfig",
    "OptimizeHandle",
    "ProphetClient",
    "ResilienceConfig",
    "ReuseConfig",
    "SamplingConfig",
    "ServeConfig",
    "StatsReport",
    "StoreConfig",
    "SweepHandle",
    "SweepResult",
    "TimingReport",
    "TransportConfig",
]

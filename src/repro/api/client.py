"""The unified Prophet client façade.

One entrypoint — ``ProphetClient.open(scenario, library, config=...)`` —
replaces the four divergent legacy surfaces (``ProphetEngine``,
``OnlineSession``, ``OfflineOptimizer``, ``serve``'s service/scheduler).
Backends are pure configuration: the same three handles resolve against an
in-process engine or the sharded serve backend, bit-identically by the
serve parity contract, and one :meth:`ProphetClient.stats` report unifies
every counter dialect.

Fluent configuration (before the backend is built)::

    client = (
        ProphetClient.open(FIGURE2_DSL, "demo")
        .with_sampling(n_worlds=400)
        .with_serving(workers=4, shards=4)
        .with_cache(".repro-cache")
        .with_basis_store(cap=256, dir=".repro-bases")
    )
    for result in client.sweep():        # streams as jobs complete
        print(result.point, result.statistics.expectation("overload").max())
    print(client.stats().to_json())
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.api.config import ClientConfig
from repro.api.handles import (
    AdaptiveSweepHandle,
    InteractiveHandle,
    OptimizeHandle,
    SweepHandle,
)
from repro.api.stats import StatsReport
from repro.core.engine import PointEvaluation, ProphetEngine
from repro.core.offline import OfflineOptimizer
from repro.core.online import OnlineSession
from repro.core.scenario import Scenario
from repro.dsl import parse_scenario
from repro.errors import ScenarioError, ServeError
from repro.obs import NULL_TRACER, EngineProfiler, Tracer
from repro.serve.executors import create_executor
from repro.serve.scheduler import Scheduler
from repro.serve.service import EvaluationService
from repro.serve.worker import LIBRARY_BUILDERS, EngineSpec
from repro.vg.library import VGLibrary


class ProphetClient:
    """The public surface: open a scenario, get handles, read one stats report.

    Construction is lazy: no engine, pool, or cache is built until the
    first handle (or evaluation) needs it, so the fluent ``with_*`` helpers
    can refine the configuration cheaply. Once the backend exists the
    configuration is frozen — ``with_*`` then raises instead of silently
    serving two configs from one client.
    """

    def __init__(
        self,
        scenario: Scenario,
        library: VGLibrary,
        config: Optional[ClientConfig] = None,
        *,
        dsl_text: Optional[str] = None,
        library_name: Optional[str] = None,
        scenario_name: str = "scenario",
    ) -> None:
        self.scenario = scenario
        self.library = library
        self.config = config or ClientConfig()
        self._dsl_text = dsl_text
        self._library_name = library_name
        self._scenario_name = scenario_name
        self._engine: Optional[ProphetEngine] = None
        self._service: Optional[EvaluationService] = None
        self._scheduler: Optional[Scheduler] = None
        self._tracer: Any = NULL_TRACER
        self._profiler: Optional[EngineProfiler] = None
        self._trace_exported = False

    # -- construction --------------------------------------------------------

    @classmethod
    def open(
        cls,
        scenario: Union[Scenario, str],
        library: Union[VGLibrary, str] = "demo",
        *,
        config: Optional[ClientConfig] = None,
        name: str = "scenario",
    ) -> "ProphetClient":
        """Open a client over a scenario and a VG library.

        ``scenario`` is a parsed :class:`Scenario` or Fuzzy Prophet DSL
        text; ``library`` is a :class:`VGLibrary` or the name of a
        registered one (``"demo"``). Opening from DSL text + a library
        name keeps the client shippable: process-pool serving needs both
        to rebuild engines inside workers.
        """
        dsl_text: Optional[str] = None
        library_name: Optional[str] = None
        if isinstance(library, str):
            if library not in LIBRARY_BUILDERS:
                raise ScenarioError(
                    f"unknown VG library {library!r} "
                    f"(known: {sorted(LIBRARY_BUILDERS)})"
                )
            library_name = library
            library = LIBRARY_BUILDERS[library]()
        if isinstance(scenario, str):
            dsl_text = scenario
            scenario = parse_scenario(dsl_text, name=name)
        scenario.check_against_library(library)
        return cls(
            scenario,
            library,
            config,
            dsl_text=dsl_text,
            library_name=library_name,
            scenario_name=name,
        )

    # -- fluent configuration ------------------------------------------------

    def with_config(self, config: ClientConfig) -> "ProphetClient":
        """A client over the same scenario with a replacement config."""
        self._require_unbuilt("with_config")
        return ProphetClient(
            self.scenario,
            self.library,
            config,
            dsl_text=self._dsl_text,
            library_name=self._library_name,
            scenario_name=self._scenario_name,
        )

    def with_serving(
        self,
        *,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        executor: Optional[str] = None,
        min_shard_worlds: Optional[int] = None,
        share_bases: Optional[bool] = None,
    ) -> "ProphetClient":
        """Route evaluations through the sharded serve backend.

        Only the knobs actually passed are changed — chained calls
        accumulate instead of resetting each other. Calling with no
        geometry knob at all still opts into the serve backend (inline,
        default sizing).
        """
        changes: dict[str, Any] = {}
        if workers is not None:
            changes["workers"] = workers
        if shards is not None:
            changes["shards"] = shards
        if executor is not None:
            changes["executor"] = executor
        if min_shard_worlds is not None:
            changes["min_shard_worlds"] = min_shard_worlds
        if share_bases is not None:
            changes["share_bases"] = share_bases
        config = self.config.replace_section("serve", **changes)
        if not config.serve.enabled:
            # The caller asked for serving but named no geometry knob:
            # pin the executor so the request is not a silent no-op.
            config = config.replace_section("serve", executor="inline")
        return self.with_config(config)

    def with_cache(self, dir: Optional[str]) -> "ProphetClient":
        """Persist finished point statistics in a cross-run result cache."""
        return self.with_config(self.config.replace_section("cache", dir=dir))

    def with_basis_store(
        self,
        *,
        cap: Optional[int] = None,
        byte_cap: Optional[int] = None,
        dir: Optional[str] = None,
    ) -> "ProphetClient":
        """Bound the in-memory basis tier and/or spill evictions to disk.

        Only the knobs actually passed are changed — chained calls
        accumulate instead of resetting each other.
        """
        changes: dict[str, Any] = {}
        if cap is not None:
            changes["basis_cap"] = cap
        if byte_cap is not None:
            changes["basis_byte_cap"] = byte_cap
        if dir is not None:
            changes["basis_dir"] = dir
        return self.with_config(self.config.replace_section("store", **changes))

    def with_sampling(
        self,
        *,
        backend: Optional[str] = None,
        n_worlds: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> "ProphetClient":
        """Choose the sampling backend, world count, or base seed."""
        changes: dict[str, Any] = {}
        if backend is not None:
            changes["backend"] = backend
        if n_worlds is not None:
            changes["n_worlds"] = n_worlds
        if base_seed is not None:
            changes["base_seed"] = base_seed
        return self.with_config(self.config.replace_section("sampling", **changes))

    def with_adaptive(
        self,
        *,
        target_ci: Optional[float] = None,
        min_worlds: Optional[int] = None,
        max_worlds: Optional[int] = None,
        round_growth: Optional[float] = None,
    ) -> "ProphetClient":
        """Turn on adaptive anytime sampling (the round protocol).

        ``target_ci`` is the switch: sweeps then run in growing world-prefix
        rounds, retire points whose worst CI half-width is at most the
        target, and reassign the unspent budget to unresolved points.
        ``min_worlds`` / ``max_worlds`` / ``round_growth`` bound the round
        ladder; left unset they fall back to the sampling section
        (``max_worlds`` to ``n_worlds``, the others to the legacy
        ``refinement_first`` / ``refinement_growth`` spellings they
        deprecate). Only the knobs actually passed are changed — chained
        calls accumulate instead of resetting each other.

        Stopping decisions are pure functions of accumulated statistics,
        so adaptive runs are deterministic; with ``max_worlds`` equal to
        ``n_worlds`` and an unreachable target the run is bitwise identical
        to the fixed-budget sweep.
        """
        changes: dict[str, Any] = {}
        if target_ci is not None:
            changes["target_ci"] = target_ci
        if min_worlds is not None:
            changes["min_worlds"] = min_worlds
        if max_worlds is not None:
            changes["max_worlds"] = max_worlds
        if round_growth is not None:
            changes["round_growth"] = round_growth
        return self.with_config(self.config.replace_section("adaptive", **changes))

    def with_resilience(
        self,
        *,
        shard_timeout: Optional[float] = None,
        shard_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        inline_rescue: Optional[bool] = None,
        job_retries: Optional[int] = None,
    ) -> "ProphetClient":
        """Tune the fault-tolerance ladder (deadlines, retries, rescue).

        Only the knobs actually passed are changed — chained calls
        accumulate instead of resetting each other. Any non-default
        resilience section routes evaluations through the serve backend,
        where the shard dispatcher lives.
        """
        changes: dict[str, Any] = {}
        if shard_timeout is not None:
            changes["shard_timeout"] = shard_timeout
        if shard_retries is not None:
            changes["shard_retries"] = shard_retries
        if retry_backoff is not None:
            changes["retry_backoff"] = retry_backoff
        if inline_rescue is not None:
            changes["inline_rescue"] = inline_rescue
        if job_retries is not None:
            changes["job_retries"] = job_retries
        return self.with_config(self.config.replace_section("resilience", **changes))

    def with_transport(
        self,
        *,
        shard_transport: Optional[str] = None,
        segment_cap_bytes: Optional[int] = None,
        lease_ttl: Optional[float] = None,
    ) -> "ProphetClient":
        """Choose how shard payloads travel to process-pool workers.

        ``shard_transport="shm"`` ships worlds, result buffers, and basis
        snapshots through named shared-memory segments leased from the
        coordinator's arena — task pickles stay O(1) in the world count and
        merge reads are zero-copy. The default ``"pickle"`` keeps the plain
        pickled payloads; shm falls back to it per generation (counted,
        never an error) when segments are unavailable or a payload exceeds
        the cap. Only the knobs actually passed are changed — chained calls
        accumulate instead of resetting each other. A non-default transport
        section routes evaluations through the serve backend, where the
        shard transport lives.
        """
        changes: dict[str, Any] = {}
        if shard_transport is not None:
            changes["shard_transport"] = shard_transport
        if segment_cap_bytes is not None:
            changes["segment_cap_bytes"] = segment_cap_bytes
        if lease_ttl is not None:
            changes["lease_ttl"] = lease_ttl
        return self.with_config(self.config.replace_section("transport", **changes))

    def with_observability(
        self,
        *,
        trace: Optional[bool] = None,
        trace_file: Optional[str] = None,
        profile: Optional[bool] = None,
        profile_top: Optional[int] = None,
    ) -> "ProphetClient":
        """Turn on span tracing and/or cProfile around evaluations.

        Only the knobs actually passed are changed — chained calls
        accumulate instead of resetting each other. ``trace_file`` implies
        tracing and is exported (Chrome trace format) on :meth:`close`.
        Observability never changes which backend is built, and the stable
        counter JSON (:meth:`StatsReport.to_json`) stays byte-identical
        with it on or off — wall-clock only ever travels in the separate
        :class:`~repro.obs.TimingReport`.
        """
        changes: dict[str, Any] = {}
        if trace is not None:
            changes["trace"] = trace
        if trace_file is not None:
            changes["trace_file"] = trace_file
        if profile is not None:
            changes["profile"] = profile
        if profile_top is not None:
            changes["profile_top"] = profile_top
        return self.with_config(self.config.replace_section("obs", **changes))

    def _require_unbuilt(self, method: str) -> None:
        if self._engine is not None or self._service is not None:
            raise ScenarioError(
                f"{method}() must be called before the backend is built; "
                "configure the client before requesting handles or stats"
            )

    # -- backend -------------------------------------------------------------

    @property
    def engine(self) -> ProphetEngine:
        """The coordinator engine (built on first use)."""
        self._ensure_backend()
        return self._engine

    def _ensure_backend(self) -> None:
        if self._engine is not None:
            return
        if self.config.wants_service():
            self._build_service()
            self._engine = self._service.engine
        else:
            self._engine = ProphetEngine(
                self.scenario, self.library, self.config.engine_config()
            )
        self._attach_observability()

    def _attach_observability(self) -> None:
        """Wire the configured tracer/profiler into the built backend.

        Idempotent: the sweep scheduler's lazily-built inline service calls
        it again to pick up the same tracer instance.
        """
        obs = self.config.obs
        if obs.tracing:
            if self._tracer is NULL_TRACER:
                self._tracer = Tracer()
            if self._service is not None:
                self._service.set_tracer(self._tracer)
            elif self._engine is not None:
                self._engine.set_tracer(self._tracer)
            if self._scheduler is not None:
                self._scheduler.tracer = self._tracer
        if obs.profile and self._engine is not None:
            if self._profiler is None:
                self._profiler = EngineProfiler()
            self._engine.profiler = self._profiler

    def _build_service(self) -> None:
        serve = self.config.serve
        engine_config = self.config.engine_config()
        kind = serve.executor
        if kind == "auto" and serve.workers is None:
            # Without an explicit worker count "auto" means sequential —
            # the in-process executor (mirrors the CLI contract).
            kind = "inline"
        executor = create_executor(kind, serve.workers)
        spec: Optional[EngineSpec] = None
        if self._dsl_text is not None and self._library_name is not None:
            spec = EngineSpec.from_dsl(
                self._dsl_text,
                library=self._library_name,
                config=engine_config,
                scenario_name=self._scenario_name,
            )
        if executor.kind == "process" and spec is None:
            raise ServeError(
                "process-pool serving needs a shippable scenario: open the "
                "client with DSL text and a named library "
                "(ProphetClient.open(dsl, 'demo')), or serve with an "
                "inline executor"
            )
        if spec is not None:
            self._service = EvaluationService(
                spec,
                executor=executor,
                shards=serve.shards,
                cache_dir=self.config.cache.dir,
                min_shard_worlds=serve.min_shard_worlds,
                share_bases=serve.share_bases,
                resilience=self.config.resilience,
                transport=self.config.transport,
            )
        else:
            engine = ProphetEngine(self.scenario, self.library, engine_config)
            self._service = EvaluationService(
                engine=engine,
                executor=executor,
                shards=serve.shards,
                cache_dir=self.config.cache.dir,
                min_shard_worlds=serve.min_shard_worlds,
                share_bases=serve.share_bases,
                resilience=self.config.resilience,
                transport=self.config.transport,
            )
        self._scheduler = Scheduler(self._service)

    def _sweep_scheduler(self) -> Scheduler:
        """The scheduler behind sweeps — built on demand for every backend.

        A pure in-process client still schedules sweeps (dedup and the
        streaming iterator need the job queue); it gets an inline
        single-shard service over the client's own engine, which the serve
        parity suite pins bit-identical to direct engine evaluation.
        """
        if self._scheduler is None:
            self._ensure_backend()
            if self._scheduler is None:
                self._service = EvaluationService(
                    engine=self._engine,
                    resilience=self.config.resilience,
                    transport=self.config.transport,
                )
                self._scheduler = Scheduler(self._service)
                self._attach_observability()
        return self._scheduler

    # -- handles -------------------------------------------------------------

    def interactive(
        self, *, neighbor_depth: int = 1, session_name: str = "interactive"
    ) -> InteractiveHandle:
        """Sliders + progressive refresh (wraps :class:`OnlineSession`)."""
        self._ensure_backend()
        if self._scheduler is not None:
            session = OnlineSession(
                self.scenario,
                self.library,
                neighbor_depth=neighbor_depth,
                scheduler=self._scheduler,
                session_name=session_name,
            )
        else:
            session = OnlineSession(
                self.scenario,
                self.library,
                neighbor_depth=neighbor_depth,
                session_name=session_name,
                engine=self._engine,
            )
        return InteractiveHandle(session)

    def sweep(
        self,
        points: Optional[Iterable[Mapping[str, Any]]] = None,
        *,
        worlds: Optional[Sequence[int]] = None,
        reuse: bool = True,
        session_name: str = "sweep",
    ) -> Union[SweepHandle, AdaptiveSweepHandle]:
        """A streaming sweep over ``points`` (default: the full grid).

        Returns immediately with every job queued (identical points
        coalesced); iterate the handle to run them one at a time and
        consume each :class:`~repro.api.SweepResult` as it completes.

        With adaptive sampling on (:meth:`with_adaptive`) the sweep runs
        through the scheduler's CI budget allocator instead and returns an
        :class:`AdaptiveSweepHandle` — same streaming surface, but points
        retire as their confidence target resolves. An explicit ``worlds``
        slice contradicts adaptive stopping and raises.
        """
        scheduler = self._sweep_scheduler()
        if self.config.adaptive.enabled:
            if worlds is not None:
                raise ScenarioError(
                    "an explicit worlds= slice is incompatible with adaptive "
                    "sampling (the round protocol chooses world prefixes); "
                    "drop worlds= or turn off with_adaptive()"
                )
            adaptive = scheduler.submit_adaptive(
                points,
                target_ci=self.config.adaptive.target_ci,
                plan=self.config.round_plan(),
                session=session_name,
                reuse=reuse,
            )
            return AdaptiveSweepHandle(scheduler, adaptive)
        sweep = scheduler.submit_sweep(
            points, worlds=worlds, session=session_name, reuse=reuse
        )
        return SweepHandle(scheduler, sweep.jobs)

    def optimize(self, *, session_name: str = "optimizer") -> OptimizeHandle:
        """The scenario's OPTIMIZE block (wraps :class:`OfflineOptimizer`)."""
        self._ensure_backend()
        if self._scheduler is not None:
            optimizer = OfflineOptimizer(
                self.scenario,
                self.library,
                scheduler=self._scheduler,
                session_name=session_name,
            )
        else:
            optimizer = OfflineOptimizer(
                self.scenario, self.library, engine=self._engine
            )
        return OptimizeHandle(optimizer)

    # -- evaluation + stats --------------------------------------------------

    def evaluate(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        reuse: bool = True,
    ) -> PointEvaluation:
        """Evaluate one parameter point through the configured backend.

        Goes straight to the service (result cache + sharded engine cycle),
        not through the scheduler's job queue — an evaluate() call mid-sweep
        must not drain jobs a streaming :class:`SweepHandle` has pending.

        With adaptive sampling on (and no explicit ``worlds`` slice) the
        point instead runs the round ladder to its confidence target
        through the scheduler — each round is a queued job, so this path
        *does* drain the queue; avoid it mid-sweep.
        """
        if self.config.adaptive.enabled and worlds is None:
            scheduler = self._sweep_scheduler()
            sweep = scheduler.submit_adaptive(
                [point],
                target_ci=self.config.adaptive.target_ci,
                plan=self.config.round_plan(),
                session="evaluate",
                reuse=reuse,
            )
            scheduler.run_adaptive(sweep)
            state = sweep.states[0]
            if state.failed:
                if state.exception is not None:
                    raise state.exception
                raise ServeError(f"adaptive evaluation failed: {state.error}")
            return state.evaluator.result
        self._ensure_backend()
        if self._service is not None:
            return self._service.evaluate(point, worlds=worlds, reuse=reuse)
        return self._engine.evaluate_point(point, worlds=worlds, reuse=reuse)

    def backend_description(self) -> str:
        """Human description of the built backend: ``"sequential"`` for a
        bare engine, ``"<executor> x<workers>"`` for the serve backend."""
        self._ensure_backend()
        if self._service is None:
            return "sequential"
        return f"{self._service.executor.kind} x{self._service.executor.workers}"

    def stats(self) -> StatsReport:
        """One merged report over every backend layer's counters.

        Wall-clock rides along as ``report.timing`` (a
        :class:`~repro.obs.TimingReport`); the byte-stable counter JSON
        (``report.to_json()``) never includes it.
        """
        self._ensure_backend()
        return StatsReport.gather(
            self._engine,
            service=self._service,
            scheduler=self._scheduler,
            tracer=self._tracer,
        )

    # -- observability -------------------------------------------------------

    @property
    def tracer(self) -> Any:
        """The live tracer (the shared no-op instance when tracing is off)."""
        return self._tracer

    def export_trace(self, path: Optional[str] = None) -> str:
        """Write the collected spans as a Chrome-loadable trace file.

        Defaults to the configured ``ObsConfig.trace_file``; returns the
        path written. Loads in ``chrome://tracing`` / Perfetto.
        """
        target = path if path is not None else self.config.obs.trace_file
        if target is None:
            raise ScenarioError(
                "no trace destination: pass export_trace(path=...) or "
                "configure with_observability(trace_file=...)"
            )
        if not self._tracer.enabled:
            raise ScenarioError(
                "tracing is off: enable it with with_observability(trace=True)"
                " or with_observability(trace_file=...) before evaluating"
            )
        self._tracer.export_chrome(target)
        self._trace_exported = True
        return target

    def profile_summary(self, top: Optional[int] = None) -> str:
        """The accumulated cProfile's top-N cumulative-time table."""
        if self._profiler is None:
            raise ScenarioError(
                "profiling is off: enable it with "
                "with_observability(profile=True) before evaluating"
            )
        return self._profiler.summary(
            top if top is not None else self.config.obs.profile_top
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the serve backend's executor, if one was built; export
        the trace to the configured ``trace_file`` if not already written."""
        if (
            self.config.obs.trace_file is not None
            and self._tracer.enabled
            and not self._trace_exported
        ):
            self.export_trace()
        if self._service is not None:
            self._service.close()

    def __enter__(self) -> "ProphetClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

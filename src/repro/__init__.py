"""Fuzzy Prophet — a probabilistic-database what-if engine.

A reproduction of *"Fuzzy Prophet: Parameter Exploration in Uncertain
Enterprise Scenarios"* (Kennedy, Lee, Loboz, Smyl, Nath — SIGMOD 2011):
construct business scenarios over stochastic black-box VG-Functions,
simulate them by Monte Carlo through a SQL substrate, and explore their
parameter spaces interactively (online mode) or by constrained optimization
(offline mode) — with *fingerprinting* detecting correlated
parameterizations so that already-computed sample distributions are remapped
instead of re-simulated.

The public surface is :mod:`repro.api` — one client, typed layered
configuration, three uniform handles, one stats report. Quickstart::

    from repro.api import ProphetClient
    from repro.models import FIGURE2_DSL

    client = ProphetClient.open(FIGURE2_DSL, "demo", name="risk_vs_cost")
    session = client.interactive()
    session.set_sliders({"purchase1": 8, "purchase2": 24, "feature": 12})
    view = session.refresh()
    print(view.statistics.expectation("overload"))

Backends — the sharded serve pool, the cross-run result cache, the tiered
basis store, the batched sampling plane — are pure configuration::

    client = (
        ProphetClient.open(FIGURE2_DSL, "demo")
        .with_serving(workers=4, shards=4)
        .with_cache(".repro-cache")
    )
    for result in client.sweep():      # streams as points complete
        print(result.point)
    print(client.stats().to_json())

The pre-1.1 flat spellings (``repro.OnlineSession``,
``repro.OfflineOptimizer``, ``repro.ProphetEngine``, ...) still resolve,
with a :class:`DeprecationWarning`, to their canonical homes under
``repro.core`` / ``repro.vg`` / ``repro.models``.
"""

import importlib
import warnings

from repro.api import (
    AdaptiveConfig,
    AdaptiveSweepHandle,
    CacheConfig,
    ClientConfig,
    InteractiveHandle,
    ObsConfig,
    OptimizeHandle,
    ProphetClient,
    ResilienceConfig,
    ReuseConfig,
    SamplingConfig,
    ServeConfig,
    StatsReport,
    StoreConfig,
    SweepHandle,
    SweepResult,
    TimingReport,
    TransportConfig,
)
from repro.dsl import parse_scenario

__version__ = "1.1.0"

#: Legacy flat spellings -> canonical module. Kept importable for
#: back-compat; every access warns. Internal code (and the CLI, and the
#: examples) must use the canonical modules or :mod:`repro.api` — the CI
#: ``deprecations`` job runs the suite with the warning filter
#: ``error::DeprecationWarning:repro\..*`` so any DeprecationWarning
#: attributed to a ``repro.*`` caller fails the build.
_LEGACY_EXPORTS: dict[str, str] = {
    "Parameter": "repro.core",
    "ParameterSpace": "repro.core",
    "Scenario": "repro.core",
    "ProphetEngine": "repro.core",
    "ProphetConfig": "repro.core",
    "PointEvaluation": "repro.core",
    "OnlineSession": "repro.core",
    "GraphView": "repro.core",
    "OfflineOptimizer": "repro.core",
    "OptimizationResult": "repro.core",
    "AxisStatistics": "repro.core",
    "ConvergenceTracker": "repro.core",
    "RiskAnalyzer": "repro.core",
    "FingerprintSpec": "repro.core.fingerprint",
    "Fingerprint": "repro.core.fingerprint",
    "CorrelationPolicy": "repro.core.fingerprint",
    "compute_fingerprint": "repro.core.fingerprint",
    "correlate": "repro.core.fingerprint",
    "analyze_markov": "repro.core.fingerprint",
    "simulate_with_shortcuts": "repro.core.fingerprint",
    "VGFunction": "repro.vg",
    "VGLibrary": "repro.vg",
    "DemandModel": "repro.models",
    "CapacityModel": "repro.models",
    "FIGURE2_DSL": "repro.models",
    "build_demo_library": "repro.models",
    "build_risk_vs_cost": "repro.models",
    "build_growth_scenario": "repro.models",
    "build_maintenance_scenario": "repro.models",
}


def __getattr__(name: str):
    """Resolve a legacy flat spelling, with a deprecation warning.

    The warning is attributed to the *caller* (``stacklevel=2``), so the
    CI filter ``error::DeprecationWarning:repro`` flags internal callers
    while external code merely sees the notice.
    """
    home = _LEGACY_EXPORTS.get(name)
    if home is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    warnings.warn(
        f"repro.{name} is deprecated; import it from {home} "
        f"(or use the repro.api client surface)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LEGACY_EXPORTS))


__all__ = [
    # the client surface (canonical: repro.api)
    "ProphetClient",
    "AdaptiveConfig",
    "AdaptiveSweepHandle",
    "ClientConfig",
    "SamplingConfig",
    "ReuseConfig",
    "StoreConfig",
    "ServeConfig",
    "ResilienceConfig",
    "TransportConfig",
    "CacheConfig",
    "ObsConfig",
    "InteractiveHandle",
    "SweepHandle",
    "SweepResult",
    "OptimizeHandle",
    "StatsReport",
    "TimingReport",
    # the DSL front door
    "parse_scenario",
    "__version__",
    # legacy flat spellings (deprecated; resolved lazily with a warning)
    *sorted(_LEGACY_EXPORTS),
]

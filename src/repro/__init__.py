"""Fuzzy Prophet — a probabilistic-database what-if engine.

A reproduction of *"Fuzzy Prophet: Parameter Exploration in Uncertain
Enterprise Scenarios"* (Kennedy, Lee, Loboz, Smyl, Nath — SIGMOD 2011):
construct business scenarios over stochastic black-box VG-Functions,
simulate them by Monte Carlo through a SQL substrate, and explore their
parameter spaces interactively (online mode) or by constrained optimization
(offline mode) — with *fingerprinting* detecting correlated
parameterizations so that already-computed sample distributions are remapped
instead of re-simulated.

Quickstart::

    from repro import parse_scenario, OnlineSession, build_demo_library
    from repro.models import FIGURE2_DSL

    scenario = parse_scenario(FIGURE2_DSL, name="risk_vs_cost")
    session = OnlineSession(scenario, build_demo_library())
    session.set_sliders({"purchase1": 8, "purchase2": 24, "feature": 12})
    view = session.refresh()
    print(view.statistics.expectation("overload"))
"""

from repro.core import (
    AxisStatistics,
    ConvergenceTracker,
    GraphView,
    OfflineOptimizer,
    OnlineSession,
    OptimizationResult,
    Parameter,
    ParameterSpace,
    PointEvaluation,
    ProphetConfig,
    ProphetEngine,
    RiskAnalyzer,
    Scenario,
)
from repro.core.fingerprint import (
    CorrelationPolicy,
    Fingerprint,
    FingerprintSpec,
    analyze_markov,
    compute_fingerprint,
    correlate,
    simulate_with_shortcuts,
)
from repro.dsl import parse_scenario
from repro.models import (
    CapacityModel,
    DemandModel,
    FIGURE2_DSL,
    build_demo_library,
    build_growth_scenario,
    build_maintenance_scenario,
    build_risk_vs_cost,
)
from repro.vg import VGFunction, VGLibrary

__version__ = "1.0.0"

__all__ = [
    "Parameter",
    "ParameterSpace",
    "Scenario",
    "ProphetEngine",
    "ProphetConfig",
    "PointEvaluation",
    "OnlineSession",
    "GraphView",
    "OfflineOptimizer",
    "OptimizationResult",
    "AxisStatistics",
    "ConvergenceTracker",
    "RiskAnalyzer",
    "FingerprintSpec",
    "Fingerprint",
    "CorrelationPolicy",
    "compute_fingerprint",
    "correlate",
    "analyze_markov",
    "simulate_with_shortcuts",
    "parse_scenario",
    "VGFunction",
    "VGLibrary",
    "DemandModel",
    "CapacityModel",
    "FIGURE2_DSL",
    "build_demo_library",
    "build_risk_vs_cost",
    "build_growth_scenario",
    "build_maintenance_scenario",
    "__version__",
]

"""Zero-copy shared-memory shard transport for the serve plane.

Every multi-shard fan-out used to move its payloads — world slices out,
sample matrices back, and (for mixed-world workloads) whole
:class:`~repro.serve.worker.BasisSnapshot` payloads — through pickle over
the ProcessPoolExecutor's pipes, so transport cost scaled with world
count, and the round protocol (PR 8) multiplied it by turning each point
into many small fan-outs. This module moves the bulk bytes through named
``multiprocessing.shared_memory`` segments instead:

* the coordinator's :class:`SegmentArena` leases refcounted named
  segments, packs the outbound columns (per-shard world ids, snapshot
  sample/seed/fingerprint matrices) into them, and pre-leases a result
  region per shard;
* task pickles carry only :class:`SegmentRef` descriptors
  ``(segment, dtype, shape, offset)`` — O(1) in ``n_worlds``;
* workers attach read-only, sample, and write the fresh matrix straight
  into their pre-leased result region; the coordinator resolves the
  returned descriptor back into a view and merges as usual.

The transport changes *where bytes live*, never *what they are*: the shm
path is bitwise identical to the pickle path across every executor,
backend, and chaos combination (pinned by the parity suites). Pickle
remains the default and the automatic fallback — platforms without
usable shared memory, or generations whose payload would exceed
``segment_cap_bytes``, silently fall back and are counted
(``ServiceStats.transport_fallbacks``), never errored.

Leases are tied into the resilience ladder. A generation's segments are
released by the service after merge (or on the error path) regardless of
how its shards fared; retries re-use the same pre-leased result regions
safely because the dispatcher heals the pool — terminating any stale
writer — before re-submitting; inline rescues return plain in-memory
samples and touch no segment at all. As a last-resort safety net every
lease carries a TTL, and expired leases are swept by the cleanup hooks in
:class:`~repro.serve.resilience.ShardDispatcher` (after a pool heal) and
:class:`~repro.serve.executors.ProcessExecutor` (on recycle/shutdown).

CPython quirk this module absorbs: since 3.8 every ``SharedMemory``
*attach* registers the segment with the resource tracker. Forked workers
share the coordinator's tracker daemon (the arena ensures it is running
before any pool can fork), so their registrations are idempotent no-ops
and nothing special is needed; a *spawned* worker starts its own private
tracker, whose exit-time cleanup would unlink coordinator-owned segments
— so a process whose first attach had to start a tracker unregisters
right after attaching. Either way the coordinator's arena is the single
owner and the only unlinker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.errors import ScenarioError, ServeError, TransientServeError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.engine import ProphetEngine
    from repro.core.storage import StorageManager
    from repro.serve.worker import BasisSnapshot, EngineSpec, ShardSample


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


#: Known shard transports, in documentation order.
SHARD_TRANSPORTS: tuple[str, ...] = ("pickle", "shm")

#: Segment packing alignment: every packed array starts on a 64-byte
#: boundary (cache line), so worker-side views are always aligned.
_ALIGN = 64


@dataclass(frozen=True)
class TransportConfig:
    """How shard payloads travel between coordinator and workers.

    ``shard_transport``
        ``"pickle"`` (default) ships payloads through the executor's
        ordinary pickling; ``"shm"`` moves bulk arrays through shared
        memory segments and pickles only descriptors.
    ``segment_cap_bytes``
        Upper bound on any single leased segment. A generation whose
        payload would exceed it falls back to pickle (counted, not an
        error) — the cap is a guard against exhausting ``/dev/shm``.
    ``lease_ttl``
        Seconds a lease may live before the sweeper may reclaim it. A
        generous safety net (normal generations release within one
        fan-out); it only matters for leases leaked by a crashed
        coordinator path.
    """

    shard_transport: str = "pickle"
    segment_cap_bytes: int = 256 * 1024 * 1024
    lease_ttl: float = 300.0

    def __post_init__(self) -> None:
        _require(
            self.shard_transport in SHARD_TRANSPORTS,
            f"unknown shard_transport {self.shard_transport!r} "
            f"(known: {', '.join(SHARD_TRANSPORTS)})",
        )
        _require(
            self.segment_cap_bytes >= 1024,
            f"segment_cap_bytes must be >= 1024, got {self.segment_cap_bytes}",
        )
        _require(
            self.lease_ttl > 0,
            f"lease_ttl must be > 0, got {self.lease_ttl}",
        )

    @property
    def enabled(self) -> bool:
        return self.shard_transport == "shm"


@dataclass(frozen=True)
class SegmentRef:
    """A picklable descriptor of one array inside a shared segment."""

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SnapshotEntryRef:
    """One snapshot basis entry with its matrices living in a segment."""

    vg_name: str
    args: tuple[Any, ...]
    samples: SegmentRef
    worlds: SegmentRef
    seeds: SegmentRef


@dataclass(frozen=True)
class SnapshotRef:
    """A :class:`~repro.serve.worker.BasisSnapshot` shipped by descriptor.

    ``version`` is the snapshot's content-addressed version — the worker's
    per-``(spec, version)`` store cache is keyed on it, so a worker that
    already seeded this snapshot never touches the segment again.
    """

    version: str
    vg_name: str
    entries: tuple[SnapshotEntryRef, ...]
    fingerprints: tuple[tuple[tuple[Any, ...], SegmentRef], ...] = ()


@dataclass(frozen=True)
class ShmShard:
    """One shard task's transport ticket: worlds in, samples out.

    ``worlds`` points at the shard's world ids (int64) packed by the
    coordinator; ``result`` is the shard's pre-leased write region —
    ``(len(worlds), n_components)`` float64 — that the worker fills and
    the coordinator resolves back into a view.
    """

    worlds: SegmentRef
    result: SegmentRef


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# repro-lint: disable=PUR001 -- per-process platform probe: every process
# answers the same question about the same kernel, so divergence is only
# "this worker saw shm vanish" — the exact downgrade the probe exists for.
_SHM_PROBE: Optional[bool] = None


def shm_available() -> bool:
    """Can this platform create, attach and unlink shared memory segments?

    Probed once per process with a tiny throwaway segment. ``False`` (no
    ``/dev/shm``, sandboxed ``shm_open``, missing module) downgrades shm
    transport to pickle — counted, never an error.
    """
    # repro-lint: disable=PUR001 -- rebinding the per-process probe memo
    # declared above; see its justification.
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=_ALIGN)
            try:
                probe.buf[0] = 1
            finally:
                probe.close()
                probe.unlink()
            _SHM_PROBE = True
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


class SegmentLease:
    """One leased segment: a bump-pointer arena the coordinator packs.

    Created only by :meth:`SegmentArena.lease`. ``refs`` is the lease's
    refcount — the arena releases the segment when it reaches zero (or
    when the TTL sweeper reclaims a leaked lease).
    """

    __slots__ = ("name", "shm", "nbytes", "refs", "deadline", "label", "_cursor")

    def __init__(self, shm: Any, nbytes: int, ttl: float, label: str) -> None:
        self.shm = shm
        self.name = shm.name
        self.nbytes = nbytes
        self.refs = 1
        # repro-lint: disable=DET001 -- leak-reclaim TTL safety net; a
        # lease's deadline never influences evaluation results.
        self.deadline = time.monotonic() + ttl
        self.label = label
        self._cursor = 0

    # -- packing -------------------------------------------------------------

    def pack(self, array: np.ndarray) -> SegmentRef:
        """Copy ``array`` into the segment; return its descriptor."""
        contiguous = np.ascontiguousarray(array)
        ref = self.reserve(contiguous.shape, contiguous.dtype)
        view = np.ndarray(
            contiguous.shape,
            dtype=contiguous.dtype,
            buffer=self.shm.buf,
            offset=ref.offset,
        )
        view[...] = contiguous
        del view
        return ref

    def reserve(self, shape: tuple[int, ...], dtype: Any) -> SegmentRef:
        """Claim an (aligned, uninitialized) region; return its descriptor.

        Used for result regions the *worker* writes — the coordinator
        never touches the bytes, only hands out the descriptor.
        """
        offset = _aligned(self._cursor)
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= dim
        end = offset + count * dt.itemsize
        if end > self.nbytes:
            raise ServeError(
                f"segment {self.name} overflow: need {end} of {self.nbytes} bytes"
            )
        self._cursor = end
        return SegmentRef(
            segment=self.name, dtype=dt.str, shape=tuple(shape), offset=offset
        )

    def view(self, ref: SegmentRef) -> np.ndarray:
        """A read view of a descriptor previously packed/reserved here."""
        if ref.segment != self.name:
            raise ServeError(
                f"descriptor names segment {ref.segment!r}, lease is {self.name!r}"
            )
        return np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=self.shm.buf, offset=ref.offset
        )


class SegmentArena:
    """Coordinator-side owner of every leased shared-memory segment.

    The arena is the *single* unlink authority: workers attach and
    detach but never unlink (they unregister from the resource tracker
    precisely so they cannot). ``stats`` is any object with mutable
    ``segments_leased`` / ``segments_reclaimed`` int attributes — the
    service passes its :class:`~repro.serve.service.ServiceStats` so
    leak accounting is part of the stable counter surface.

    Releasing is two-phase because merged views may still reference the
    mapping when the service's ``finally`` runs: the segment is
    *unlinked* immediately (its name disappears — the leak-relevant
    event, counted as reclaimed) and the local mapping is closed as soon
    as no view pins it, retried opportunistically from every public
    call.
    """

    def __init__(self, ttl: float = 300.0, stats: Any = None) -> None:
        # Start the resource tracker *now*, before any process pool forks:
        # forked workers then inherit (share) it, and their attach-side
        # registrations stay idempotent instead of spawning private
        # trackers that would unlink our segments when the worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platforms without a tracker
            pass
        self.ttl = ttl
        self.stats = stats
        self._leases: dict[str, SegmentLease] = {}
        self._deferred: list[Any] = []
        #: Arena-local counters (mirrored into ``stats`` when present).
        self.segments_leased = 0
        self.segments_reclaimed = 0
        self.segments_expired = 0

    # -- lease lifecycle -----------------------------------------------------

    def lease(self, nbytes: int, label: str = "") -> SegmentLease:
        """Lease a fresh named segment of at least ``nbytes`` bytes."""
        from multiprocessing import shared_memory

        self._drain_deferred()
        size = max(_ALIGN, nbytes)
        shm = shared_memory.SharedMemory(create=True, size=size)
        lease = SegmentLease(shm, size, self.ttl, label)
        self._leases[lease.name] = lease
        self.segments_leased += 1
        if self.stats is not None:
            self.stats.segments_leased += 1
        return lease

    def retain(self, lease: SegmentLease) -> None:
        """Add a reference: the lease survives until every holder releases."""
        if lease.name not in self._leases:
            raise ServeError(f"segment {lease.name} is not leased from this arena")
        lease.refs += 1
        # repro-lint: disable=DET001 -- TTL safety net only; see SegmentLease.
        lease.deadline = time.monotonic() + self.ttl

    def touch(self, lease: SegmentLease) -> None:
        """Refresh a live lease's TTL (cached snapshot segments on reuse)."""
        if lease.name in self._leases:
            # repro-lint: disable=DET001 -- TTL safety net only; see SegmentLease.
            lease.deadline = time.monotonic() + self.ttl

    def release(self, lease: SegmentLease) -> None:
        """Drop one reference; unlink the segment when none remain."""
        if lease.name not in self._leases:
            return  # already reclaimed (idempotent: sweeper may race a release)
        lease.refs -= 1
        if lease.refs <= 0:
            self._reclaim(lease)
        self._drain_deferred()

    def release_all(self) -> None:
        """Unlink every live lease (service close / executor teardown)."""
        for lease in list(self._leases.values()):
            self._reclaim(lease)
        self._drain_deferred()

    def sweep_expired(self) -> int:
        """Reclaim leases past their TTL (the leak safety net); count them."""
        # repro-lint: disable=DET001 -- TTL safety net only; see SegmentLease.
        now = time.monotonic()
        expired = [lease for lease in self._leases.values() if lease.deadline < now]
        for lease in expired:
            self.segments_expired += 1
            self._reclaim(lease)
        self._drain_deferred()
        return len(expired)

    def live_segments(self) -> int:
        """Leased minus reclaimed — the leak assertion tests pin to zero."""
        return len(self._leases)

    def get(self, name: str) -> Optional[SegmentLease]:
        """The live lease backing ``name``, if this arena owns it."""
        return self._leases.get(name)

    # -- internals -----------------------------------------------------------

    def _reclaim(self, lease: SegmentLease) -> None:
        self._leases.pop(lease.name, None)
        try:
            lease.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass
        self.segments_reclaimed += 1
        if self.stats is not None:
            self.stats.segments_reclaimed += 1
        if not self._try_close(lease.shm):
            self._deferred.append(lease.shm)

    def _drain_deferred(self) -> None:
        still = [shm for shm in self._deferred if not self._try_close(shm)]
        self._deferred = still

    @staticmethod
    def _try_close(shm: Any) -> bool:
        try:
            shm.close()
            return True
        except BufferError:
            # A merged view still pins the mapping; the unlink already
            # happened (no leak), closing retries on the next arena call.
            return False


# -- worker side -------------------------------------------------------------


#: Decided at this process's first attach: did the attach have to start a
#: *private* resource tracker (spawned worker), whose exit-time cleanup
#: would unlink segments this process merely attached? If so, every
#: attach unregisters right away. Forked workers and the coordinator
#: share one pre-started tracker and must NOT unregister — the shared
#: cache holds one entry per segment, owned by the arena's unlink.
# repro-lint: disable=PUR001 -- per-process tracker-ownership memo; the
# answer is a property of this process's start method, never shared.
_PRIVATE_TRACKER: Optional[bool] = None


def _tracker_is_private() -> bool:
    # repro-lint: disable=PUR001 -- rebinding the per-process memo declared
    # above; see its justification.
    global _PRIVATE_TRACKER
    if _PRIVATE_TRACKER is None:
        try:
            from multiprocessing import resource_tracker

            _PRIVATE_TRACKER = (
                getattr(resource_tracker._resource_tracker, "_pid", None) is None
            )
        except Exception:  # pragma: no cover - tracker API drift
            _PRIVATE_TRACKER = False
    return _PRIVATE_TRACKER


def _attach(name: str) -> Any:
    """Attach an existing segment without adopting its ownership.

    An unknown name means the coordinator already reclaimed the
    generation (a stale retry) — a transient substrate condition, so the
    resilience ladder handles it. See :data:`_PRIVATE_TRACKER` for the
    resource-tracker ownership rules this helper enforces.
    """
    from multiprocessing import shared_memory

    private = _tracker_is_private()  # decide BEFORE attach starts a tracker
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as error:
        raise TransientServeError(
            f"shard segment {name!r} is gone (generation reclaimed?)"
        ) from error
    if private:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker API drift
            pass
    return shm


class SegmentReader:
    """One task's attachment cache: each named segment attaches once."""

    def __init__(self) -> None:
        self._segments: dict[str, Any] = {}

    def view(self, ref: SegmentRef) -> np.ndarray:
        shm = self._segments.get(ref.segment)
        if shm is None:
            shm = _attach(ref.segment)
            self._segments[ref.segment] = shm
        return np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
        )

    def detach(self, name: str) -> Any:
        """Hand a segment's ownership to the caller (skips this cleanup)."""
        return self._segments.pop(name)

    def close(self) -> None:
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view outlived the task
                pass
        self._segments.clear()


def _worlds_from(reader: SegmentReader, ref: SegmentRef) -> tuple[int, ...]:
    return tuple(int(w) for w in reader.view(ref))


def _ship(sample: "ShardSample", ticket: ShmShard, reader: SegmentReader) -> "ShardSample":
    """Write a shard's samples into its pre-leased result region.

    Returns the sample with ``samples`` swapped for the descriptor the
    coordinator resolves. A shape mismatch is a deterministic bug (the
    coordinator sized the region from the same plan), so it raises a
    permanent :class:`~repro.errors.ServeError`, not a transient.
    """
    matrix = np.ascontiguousarray(np.asarray(sample.samples, dtype=float))
    if tuple(matrix.shape) != ticket.result.shape:
        raise ServeError(
            f"shard produced shape {matrix.shape}, result region is "
            f"{ticket.result.shape}"
        )
    out = reader.view(ticket.result)
    out[...] = matrix
    del out
    return replace(sample, samples=ticket.result)


# -- worker-side snapshot materialization ------------------------------------

#: Per-process cache of seeded snapshot stores built from segment refs:
#: ``(spec_hash, snapshot_version)`` -> (store, attached segments). The
#: attached segments stay open exactly as long as the store that views
#: into them is cached — the "snapshot cache keyed to attached segments"
#: contract — and are closed when a newer same-VG version evicts them.
# repro-lint: disable=PUR001 -- documented per-process memo keyed by
# (spec hash, snapshot version); cold re-materialization is bit-identical.
_SNAPSHOT_REF_STORES: dict[tuple[str, str], tuple[Any, tuple[Any, ...]]] = {}


def _snapshot_from_refs(
    ref: SnapshotRef, reader: SegmentReader
) -> tuple["BasisSnapshot", tuple[Any, ...]]:
    """Materialize a :class:`BasisSnapshot` whose matrices view segments.

    World/seed ids are converted back to the tuples the storage layer
    expects (O(entries x worlds) ints, paid once per cached version);
    the big sample and fingerprint matrices stay zero-copy views. The
    returned segments must outlive the store built from the snapshot.
    """
    from repro.core.storage import BasisEntry
    from repro.serve.worker import BasisSnapshot

    entries = []
    for entry_ref in ref.entries:
        entries.append(
            BasisEntry(
                vg_name=entry_ref.vg_name,
                args=entry_ref.args,
                samples=reader.view(entry_ref.samples),
                worlds=_worlds_from(reader, entry_ref.worlds),
                seeds=tuple(int(s) for s in reader.view(entry_ref.seeds)),
            )
        )
    fingerprints = tuple(
        (args, reader.view(matrix_ref)) for args, matrix_ref in ref.fingerprints
    )
    names = {
        used.segment
        for entry_ref in ref.entries
        for used in (entry_ref.samples, entry_ref.worlds, entry_ref.seeds)
    }
    names |= {matrix_ref.segment for _, matrix_ref in ref.fingerprints}
    segments = tuple(reader.detach(name) for name in sorted(names))
    snapshot = BasisSnapshot(
        version=ref.version,
        vg_name=ref.vg_name,
        entries=tuple(entries),
        fingerprints=fingerprints,
    )
    return snapshot, segments


def _snapshot_store_from_refs(
    spec: "EngineSpec", engine: "ProphetEngine", ref: SnapshotRef, reader: SegmentReader
) -> Any:
    """Worker-side store cache for descriptor-shipped snapshots.

    Mirrors :func:`repro.serve.worker._snapshot_store_for` (same eviction:
    one live version per (spec, VG)), additionally closing the evicted
    version's attached segments once its store — and therefore every view
    into them — is dropped.
    """
    from repro.serve.worker import build_snapshot_store

    spec_key = spec.content_hash()
    cache_key = (spec_key, ref.version)
    cached = _SNAPSHOT_REF_STORES.get(cache_key)
    if cached is not None:
        return cached[0]
    snapshot, segments = _snapshot_from_refs(ref, reader)
    store = build_snapshot_store(engine, snapshot)
    vg_prefix = f"{ref.vg_name.lower()}:"
    for stale in [
        k
        for k in _SNAPSHOT_REF_STORES
        if k[0] == spec_key and k[1].startswith(vg_prefix) and k != cache_key
    ]:
        _, stale_segments = _SNAPSHOT_REF_STORES.pop(stale)
        for shm in stale_segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - store view leaked
                pass
    _SNAPSHOT_REF_STORES[cache_key] = (store, segments)
    return store


# -- shard task variants (shm transport) -------------------------------------


def sample_shard_task_shm(
    spec: "EngineSpec",
    alias: str,
    point_items: tuple[tuple[str, Any], ...],
    ticket: ShmShard,
) -> "ShardSample":
    """Process-pool task: fresh-sample one shard, worlds and samples via shm."""
    from repro.serve.worker import _engine_for, fresh_shard

    engine = _engine_for(spec)
    reader = SegmentReader()
    try:
        worlds = _worlds_from(reader, ticket.worlds)
        sample = fresh_shard(engine, alias, dict(point_items), worlds)
        return _ship(sample, ticket, reader)
    finally:
        reader.close()


def acquire_shard_task_shm(
    spec: "EngineSpec",
    alias: str,
    point_items: tuple[tuple[str, Any], ...],
    ticket: ShmShard,
    snapshot_ref: SnapshotRef,
) -> "ShardSample":
    """Process-pool task: snapshot-reuse acquire with every matrix via shm."""
    from repro.serve.worker import _engine_for, acquire_shard

    engine = _engine_for(spec)
    reader = SegmentReader()
    try:
        store = _snapshot_store_from_refs(spec, engine, snapshot_ref, reader)
        worlds = _worlds_from(reader, ticket.worlds)
        sample = acquire_shard(engine, store, alias, dict(point_items), worlds)
        return _ship(sample, ticket, reader)
    finally:
        reader.close()


def fresh_shard_shm(
    engine: "ProphetEngine",
    alias: str,
    point: dict[str, Any],
    ticket: ShmShard,
) -> "ShardSample":
    """Inline-executor twin of :func:`sample_shard_task_shm`."""
    from repro.serve.worker import fresh_shard

    reader = SegmentReader()
    try:
        worlds = _worlds_from(reader, ticket.worlds)
        sample = fresh_shard(engine, alias, point, worlds)
        return _ship(sample, ticket, reader)
    finally:
        reader.close()


def acquire_shard_shm(
    engine: "ProphetEngine",
    store: "StorageManager",
    alias: str,
    point: dict[str, Any],
    ticket: ShmShard,
) -> "ShardSample":
    """Inline-executor twin of :func:`acquire_shard_task_shm`.

    The inline path keeps the coordinator-built snapshot store (shipping
    a snapshot to your own process is pointless); only the world slice
    and the result matrix ride the segment, exercising the same
    pack/attach/write/resolve byte path as the process pool.
    """
    from repro.serve.worker import acquire_shard

    reader = SegmentReader()
    try:
        worlds = _worlds_from(reader, ticket.worlds)
        sample = acquire_shard(engine, store, alias, point, worlds)
        return _ship(sample, ticket, reader)
    finally:
        reader.close()


# -- coordinator-side packing helpers ----------------------------------------


def generation_nbytes(shard_rows: list[int], n_components: int) -> int:
    """Aligned bytes one fan-out generation needs: worlds in, results out."""
    total = 0
    for rows in shard_rows:
        total += _aligned(rows * 8) + _ALIGN  # world ids, int64
        total += _aligned(rows * n_components * 8) + _ALIGN  # result, float64
    return total + _ALIGN


def snapshot_nbytes(snapshot: "BasisSnapshot") -> int:
    """Aligned bytes needed to pack a snapshot's matrices into a segment."""
    total = 0
    for entry in snapshot.entries:
        total += _aligned(np.asarray(entry.samples).nbytes) + _ALIGN
        total += _aligned(len(entry.worlds) * 8) + _ALIGN
        total += _aligned(len(entry.seeds) * 8) + _ALIGN
    for _, matrix in snapshot.fingerprints:
        total += _aligned(np.asarray(matrix).nbytes) + _ALIGN
    return total + _ALIGN


def pack_snapshot(lease: SegmentLease, snapshot: "BasisSnapshot") -> SnapshotRef:
    """Pack a snapshot's matrices into ``lease``; return the descriptor.

    World ids pack as int64; seeds as uint64 (world seeds are full
    64-bit hash outputs). Entry args and the version string stay in the
    descriptor — tiny, and the worker cache keys on the version.
    """
    entries = []
    for entry in snapshot.entries:
        entries.append(
            SnapshotEntryRef(
                vg_name=entry.vg_name,
                args=entry.args,
                samples=lease.pack(np.asarray(entry.samples, dtype=float)),
                worlds=lease.pack(np.asarray(entry.worlds, dtype=np.int64)),
                seeds=lease.pack(np.asarray(entry.seeds, dtype=np.uint64)),
            )
        )
    fingerprints = tuple(
        (args, lease.pack(np.asarray(matrix, dtype=float)))
        for args, matrix in snapshot.fingerprints
    )
    return SnapshotRef(
        version=snapshot.version,
        vg_name=snapshot.vg_name,
        entries=tuple(entries),
        fingerprints=fingerprints,
    )


def logical_nbytes(snapshot: Optional["BasisSnapshot"]) -> int:
    """Payload bytes a snapshot ships (for the bytes_shipped counters)."""
    if snapshot is None:
        return 0
    total = 0
    for entry in snapshot.entries:
        total += np.asarray(entry.samples).nbytes
        total += len(entry.worlds) * 8 + len(entry.seeds) * 8
    for _, matrix in snapshot.fingerprints:
        total += np.asarray(matrix).nbytes
    return total


__all__ = [
    "SHARD_TRANSPORTS",
    "SegmentArena",
    "SegmentLease",
    "SegmentReader",
    "SegmentRef",
    "ShmShard",
    "SnapshotEntryRef",
    "SnapshotRef",
    "TransportConfig",
    "acquire_shard_shm",
    "acquire_shard_task_shm",
    "fresh_shard_shm",
    "generation_nbytes",
    "logical_nbytes",
    "pack_snapshot",
    "sample_shard_task_shm",
    "shm_available",
    "snapshot_nbytes",
]

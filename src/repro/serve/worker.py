"""Worker-side machinery for process-pool shard evaluation.

A worker process cannot receive a live :class:`ProphetEngine` (engines hold
an open SQL catalog, numpy matrices, and closures), so it receives an
:class:`EngineSpec` — a small picklable recipe — and builds the engine
itself, once, caching it for every later shard task. Specs describe the
scenario either as DSL text plus a named VG library, or as a named builder
from :data:`SCENARIO_BUILDERS`.

:func:`sample_shard_task` is the unit of work: fresh-sample one VG output
over one contiguous world shard. It runs only the generated-SQL sampling
stage (`ProphetEngine.sample_fresh`), which is a pure function of
``(scenario, config, point, worlds)`` — all reuse and aggregation stay on
the coordinator, so results never depend on which worker ran which shard.

:func:`acquire_shard_task` is the reuse-aware variant: the coordinator
ships a read-only :class:`BasisSnapshot` of its hot in-memory bases (plus
their fingerprints), the worker seeds a throwaway snapshot store from it,
and serves its shard through the ordinary Storage Manager acquire path —
exact hit, fingerprint map with fresh fill of unmapped components, or a
full fresh miss. Every worker (and the inline executor) sees the same
snapshot, and the snapshot contains only bases the coordinator itself
could not use for the request (overlapping some requested worlds, covering
less than the full slice), so the reuse decision for a shard is a pure
function of (coordinator history, shard worlds) — never of worker
scheduling — and can never contradict a coordinator decision. The produced
shard bases ship back in the :class:`ShardSample` and are merged, in shard
order, into the entry the coordinator stores.

The round protocol (:mod:`repro.core.rounds`) rides on this purity with no
worker-side machinery: a round's fresh increment reaches the workers as one
ordinary contiguous world shard (one shard generation), so deadlines,
retries, pool self-healing, and inline rescue apply to every round exactly
as to a one-shot evaluation — and because each task is a pure function of
``(spec, point, worlds)``, a point evaluated in rounds merges to the same
bits as the same point evaluated in one shot, under any executor.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.core.engine import ProphetConfig, ProphetEngine, StageTimings
from repro.core.fingerprint.fingerprint import Fingerprint
from repro.core.fingerprint.registry import FingerprintRegistry
from repro.core.storage import BasisEntry, StorageManager
from repro.dsl import parse_scenario
from repro.errors import ServeError
from repro.models import (
    build_demo_library,
    build_growth_scenario,
    build_maintenance_scenario,
    build_risk_vs_cost,
)
from repro.vg.seeds import world_seed

#: Named VG libraries a spec may reference (DSL-text specs). Immutable:
#: the registry pickles toward workers by name only, so a mutation on the
#: coordinator could never reach them anyway — freezing makes that
#: impossible to rely on by accident.
LIBRARY_BUILDERS: Mapping[str, Callable[[], Any]] = MappingProxyType(
    {
        "demo": build_demo_library,
    }
)

#: Named (scenario, library) builders a spec may reference instead of DSL.
SCENARIO_BUILDERS: Mapping[str, Callable[..., tuple[Any, Any]]] = MappingProxyType(
    {
        "risk_vs_cost": build_risk_vs_cost,
        "growth": build_growth_scenario,
        "maintenance": build_maintenance_scenario,
    }
)


@dataclass(frozen=True)
class EngineSpec:
    """A picklable recipe for constructing a :class:`ProphetEngine`.

    Exactly one of ``dsl`` or ``builder`` must be set. ``config`` carries
    every determinism-relevant knob (worlds, seeds, tolerances); two specs
    with equal :meth:`content_hash` build engines that produce bit-identical
    samples for the same (point, worlds) requests.
    """

    dsl: Optional[str] = None
    library: str = "demo"
    builder: Optional[str] = None
    builder_args: tuple[tuple[str, Any], ...] = ()
    scenario_name: str = "serve_scenario"
    config: ProphetConfig = field(default_factory=ProphetConfig)

    @classmethod
    def from_dsl(
        cls,
        text: str,
        *,
        library: str = "demo",
        config: Optional[ProphetConfig] = None,
        scenario_name: str = "serve_scenario",
    ) -> "EngineSpec":
        if library not in LIBRARY_BUILDERS:
            raise ServeError(
                f"unknown VG library {library!r} "
                f"(known: {sorted(LIBRARY_BUILDERS)})"
            )
        return cls(
            dsl=text,
            library=library,
            scenario_name=scenario_name,
            config=config or ProphetConfig(),
        )

    @classmethod
    def from_builder(
        cls,
        name: str,
        *,
        config: Optional[ProphetConfig] = None,
        **builder_kwargs: Any,
    ) -> "EngineSpec":
        if name not in SCENARIO_BUILDERS:
            raise ServeError(
                f"unknown scenario builder {name!r} "
                f"(known: {sorted(SCENARIO_BUILDERS)})"
            )
        return cls(
            builder=name,
            builder_args=tuple(sorted(builder_kwargs.items())),
            scenario_name=name,
            config=config or ProphetConfig(),
        )

    def __post_init__(self) -> None:
        if (self.dsl is None) == (self.builder is None):
            raise ServeError("EngineSpec needs exactly one of dsl= or builder=")

    def content_hash(self) -> str:
        """Digest of everything that determines the engine's behavior."""
        payload = json.dumps(
            {
                "dsl": self.dsl,
                "library": self.library,
                "builder": self.builder,
                "builder_args": [[k, repr(v)] for k, v in self.builder_args],
                "config": {
                    "n_worlds": self.config.n_worlds,
                    "base_seed": self.config.base_seed,
                    "fingerprint_seeds": self.config.fingerprint_seeds,
                    "correlation_tolerance": self.config.correlation_tolerance,
                    "min_mapped_fraction": self.config.min_mapped_fraction,
                    "basis_cap": self.config.basis_cap,
                    "basis_byte_cap": self.config.basis_byte_cap,
                    "basis_dir": self.config.basis_dir,
                    "sampling_backend": self.config.sampling_backend,
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def build_scenario(self) -> tuple[Any, Any]:
        """The (scenario, library) pair this spec describes (no engine)."""
        if self.builder is not None:
            return SCENARIO_BUILDERS[self.builder](**dict(self.builder_args))
        scenario = parse_scenario(self.dsl, name=self.scenario_name)
        return scenario, LIBRARY_BUILDERS[self.library]()

    def build(self) -> ProphetEngine:
        scenario, library = self.build_scenario()
        return ProphetEngine(scenario, library, self.config)


@dataclass(frozen=True)
class BasisSnapshot:
    """A read-only view of the coordinator's hot bases for one VG.

    ``entries`` are the coordinator's own (picklable)
    :class:`~repro.core.storage.BasisEntry` objects, shipped as-is.
    ``version`` is unique per snapshot build; workers cache the seeded
    snapshot store per ``(spec, version)`` so the shards of one sampling
    request share one store instead of re-seeding per task.
    ``fingerprints`` carries the coordinator's probe matrices for the
    snapshot bases and the current target, so workers never re-probe.
    """

    version: str
    vg_name: str
    entries: tuple[BasisEntry, ...]
    fingerprints: tuple[tuple[tuple[Any, ...], np.ndarray], ...] = ()

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class ShardSample:
    """One shard's acquisition outcome, shipped worker -> coordinator.

    ``samples`` is the shard's sample matrix (the newly produced basis the
    coordinator merges, in shard order, into its stored entry); ``source``
    says how it was obtained (``"exact"`` / ``"mapped"`` / ``"fresh"``).
    ``sampled_batched``/``sampled_fallback`` count the fresh world-rows by
    the sampling-plane backend that produced them (worker-side engines keep
    their own :class:`~repro.sqldb.executor.ExecutionStats`, so the counts
    ride back with the shard for the coordinator's ServiceStats).

    ``elapsed_seconds``/``timing`` are worker-side wall-clock, measured in
    the worker process and shipped back for coordinator-side observability
    (workers never hold a tracer; the dispatcher turns these into worker
    -track trace events). ``timing`` is a pickle-friendly tuple of
    ``(stage_name, seconds)`` pairs.

    In transit under the shm transport (:mod:`repro.serve.transport`)
    ``samples`` is a :class:`~repro.serve.transport.SegmentRef` descriptor
    of the pre-leased result region the worker wrote; the dispatcher
    resolves it back into the matrix before anyone else sees the sample.
    """

    samples: np.ndarray
    source: str
    basis_args: Optional[tuple[Any, ...]] = None
    mapped_fraction: float = 0.0
    components_recomputed: int = 0
    sampled_batched: int = 0
    sampled_fallback: int = 0
    elapsed_seconds: float = 0.0
    timing: tuple[tuple[str, float], ...] = ()


def build_snapshot_store(engine: ProphetEngine, snapshot: BasisSnapshot) -> StorageManager:
    """Seed a throwaway Storage Manager from a coordinator snapshot.

    The store's registry is pre-seeded with the shipped fingerprints, so
    seeding costs no probe invocations; entries keep the coordinator's
    order, which is what makes candidate ranking (and therefore the reuse
    decision) identical on every executor.
    """
    config = engine.config
    registry = FingerprintRegistry(
        config.fingerprint_spec(), config.correlation_policy()
    )
    # Non-mutating: snapshot stores are cached per content version and
    # shared across requests, so acquire must not retain mapped results —
    # decisions have to stay a pure function of the snapshot.
    store = StorageManager(registry, store_mapped_results=False)
    for args, matrix in snapshot.fingerprints:
        registry.seed_fingerprint(
            Fingerprint(
                vg_name=snapshot.vg_name,
                args=tuple(args),
                matrix=matrix,
                spec=registry.spec,
            )
        )
    for entry in snapshot.entries:
        function = engine.library.get(entry.vg_name)
        store.store(function, entry.args, entry.samples, entry.worlds, entry.seeds)
    return store


def fresh_shard(
    engine: ProphetEngine,
    alias: str,
    point: dict[str, Any],
    worlds: tuple[int, ...],
) -> ShardSample:
    """Fresh-sample one shard through the engine's sampling plane.

    Shared by the process workers and the inline executor; the returned
    :class:`ShardSample` carries which backend the plane used (batched vs
    per-world loop) so coordinators can observe worker-side fallback.
    """
    timings = StageTimings()
    # repro-lint: disable=DET001 -- worker-side observability shipped in
    # ShardSample.elapsed_seconds; never read by sampling decisions.
    started = time.perf_counter()
    samples = engine.sample_fresh(alias, point, worlds, timings=timings)
    # repro-lint: disable=DET001 -- observability only (see above).
    elapsed = time.perf_counter() - started
    batched = engine.sampling.last_backend == "batched"
    return ShardSample(
        samples=np.asarray(samples, dtype=float),
        source="fresh",
        sampled_batched=len(worlds) if batched else 0,
        sampled_fallback=0 if batched else len(worlds),
        elapsed_seconds=elapsed,
        timing=(("querygen", timings.querygen), ("sql", timings.sql)),
    )


def acquire_shard(
    engine: ProphetEngine,
    store: StorageManager,
    alias: str,
    point: dict[str, Any],
    worlds: tuple[int, ...],
) -> ShardSample:
    """Serve one shard through a snapshot store: reuse first, fresh last.

    Shared by the process workers and the inline executor so both make
    byte-identical decisions from the same snapshot. Point normalization
    and output lookup are the scenario's own
    (:meth:`~repro.core.scenario.Scenario.validate_sweep_point`), so shard
    reuse keys cannot drift from the coordinator's.
    """
    # repro-lint: disable=DET001 -- worker-side observability shipped in
    # ShardSample.elapsed_seconds/timing; never read by reuse decisions.
    started = time.perf_counter()
    output = engine.scenario.vg_output(alias)
    validated = engine.scenario.validate_sweep_point(point)
    function = engine.library.get(output.vg_name)
    args = output.model_arg_values(validated)
    seeds = tuple(world_seed(engine.config.base_seed, w) for w in worlds)
    samples, report = store.acquire(
        function,
        args,
        worlds,
        seeds,
        reuse=True,
        min_mapped_fraction=engine.config.min_mapped_fraction,
    )
    # repro-lint: disable=DET001 -- observability only (see above).
    acquire_elapsed = time.perf_counter() - started
    if samples is None:
        sample = fresh_shard(engine, alias, validated, worlds)
        return replace(
            sample,
            # repro-lint: disable=DET001 -- observability only (see above).
            elapsed_seconds=time.perf_counter() - started,
            timing=(("reuse", acquire_elapsed),) + sample.timing,
        )
    return ShardSample(
        samples=np.asarray(samples, dtype=float),
        source=report.source,
        basis_args=report.basis_args,
        mapped_fraction=report.mapped_fraction,
        components_recomputed=report.components_recomputed,
        elapsed_seconds=acquire_elapsed,
        timing=(("reuse", acquire_elapsed),),
    )


#: Per-process engine cache: one engine per spec, reused across shard tasks.
#: Per-process-safe: keyed by spec content hash, so a cold worker rebuilds
#: an identical engine — divergence from the coordinator is impossible.
# repro-lint: disable=PUR001 -- documented per-process memo keyed by
# content hash; cold rebuild is bit-identical.
_WORKER_ENGINES: dict[str, ProphetEngine] = {}

#: Per-process snapshot-store cache: ``(spec_hash, snapshot_version)`` ->
#: seeded store. Only the latest version per spec is retained, so stale
#: snapshots (and their sample matrices) never accumulate in workers.
#: Known tradeoff of the pickle transport: the snapshot payload pickles
#: once per shard task (ProcessPoolExecutor has no per-worker broadcast);
#: this cache only avoids re-seeding. The shm transport
#: (:mod:`repro.serve.transport`) removes that tax — snapshots ship as
#: O(entries) segment descriptors and its twin cache
#: (``_SNAPSHOT_REF_STORES``) keys the seeded store to the attached
#: segments. The coordinator bounds the payload either way by shipping
#: only partial-coverage bases; uniform-world workloads ship nothing.
# repro-lint: disable=PUR001 -- documented per-process memo keyed by
# (spec hash, snapshot version); cold re-seeding is bit-identical.
_SNAPSHOT_STORES: dict[tuple[str, str], StorageManager] = {}


def _engine_for(spec: EngineSpec) -> ProphetEngine:
    key = spec.content_hash()
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        # Worker engines never consult their own basis store (shard tasks
        # run sample_fresh or the separate snapshot store), so drop the
        # disk tier: indexing the coordinator's spill dir in every worker
        # process would be pure startup I/O.
        scenario, library = spec.build_scenario()
        config = replace(spec.config, basis_dir=None)
        engine = ProphetEngine(scenario, library, config)
        _WORKER_ENGINES[key] = engine
    return engine


def sample_shard_task(
    spec: EngineSpec,
    alias: str,
    point_items: tuple[tuple[str, Any], ...],
    worlds: tuple[int, ...],
) -> ShardSample:
    """Process-pool task: fresh samples of one output over one world shard."""
    engine = _engine_for(spec)
    return fresh_shard(engine, alias, dict(point_items), worlds)


def _snapshot_store_for(
    spec: EngineSpec, engine: ProphetEngine, snapshot: BasisSnapshot
) -> StorageManager:
    spec_key = spec.content_hash()
    cache_key = (spec_key, snapshot.version)
    store = _SNAPSHOT_STORES.get(cache_key)
    if store is None:
        store = build_snapshot_store(engine, snapshot)
        # Retain one store per (spec, VG): versions are prefixed with the
        # VG name, so evicting only same-prefix entries keeps the other
        # outputs' current stores warm (a scenario typically ships one
        # snapshot per VG output per evaluation).
        vg_prefix = f"{snapshot.vg_name.lower()}:"
        for stale in [
            k
            for k in _SNAPSHOT_STORES
            if k[0] == spec_key and k[1].startswith(vg_prefix) and k != cache_key
        ]:
            del _SNAPSHOT_STORES[stale]
        _SNAPSHOT_STORES[cache_key] = store
    return store


def acquire_shard_task(
    spec: EngineSpec,
    alias: str,
    point_items: tuple[tuple[str, Any], ...],
    worlds: tuple[int, ...],
    snapshot: BasisSnapshot,
) -> ShardSample:
    """Process-pool task: serve one shard with snapshot reuse, fresh fallback."""
    engine = _engine_for(spec)
    store = _snapshot_store_for(spec, engine, snapshot)
    return acquire_shard(engine, store, alias, dict(point_items), worlds)


def worker_engine_count() -> int:
    """How many engines this process has built (observability/testing)."""
    return len(_WORKER_ENGINES)

"""Worker-side machinery for process-pool shard evaluation.

A worker process cannot receive a live :class:`ProphetEngine` (engines hold
an open SQL catalog, numpy matrices, and closures), so it receives an
:class:`EngineSpec` — a small picklable recipe — and builds the engine
itself, once, caching it for every later shard task. Specs describe the
scenario either as DSL text plus a named VG library, or as a named builder
from :data:`SCENARIO_BUILDERS`.

:func:`sample_shard_task` is the unit of work: fresh-sample one VG output
over one contiguous world shard. It runs only the generated-SQL sampling
stage (`ProphetEngine.sample_fresh`), which is a pure function of
``(scenario, config, point, worlds)`` — all reuse and aggregation stay on
the coordinator, so results never depend on which worker ran which shard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.core.engine import ProphetConfig, ProphetEngine
from repro.dsl import parse_scenario
from repro.errors import ServeError
from repro.models import (
    build_demo_library,
    build_growth_scenario,
    build_maintenance_scenario,
    build_risk_vs_cost,
)

#: Named VG libraries a spec may reference (DSL-text specs).
LIBRARY_BUILDERS: dict[str, Callable[[], Any]] = {
    "demo": build_demo_library,
}

#: Named (scenario, library) builders a spec may reference instead of DSL.
SCENARIO_BUILDERS: dict[str, Callable[..., tuple[Any, Any]]] = {
    "risk_vs_cost": build_risk_vs_cost,
    "growth": build_growth_scenario,
    "maintenance": build_maintenance_scenario,
}


@dataclass(frozen=True)
class EngineSpec:
    """A picklable recipe for constructing a :class:`ProphetEngine`.

    Exactly one of ``dsl`` or ``builder`` must be set. ``config`` carries
    every determinism-relevant knob (worlds, seeds, tolerances); two specs
    with equal :meth:`content_hash` build engines that produce bit-identical
    samples for the same (point, worlds) requests.
    """

    dsl: Optional[str] = None
    library: str = "demo"
    builder: Optional[str] = None
    builder_args: tuple[tuple[str, Any], ...] = ()
    scenario_name: str = "serve_scenario"
    config: ProphetConfig = field(default_factory=ProphetConfig)

    @classmethod
    def from_dsl(
        cls,
        text: str,
        *,
        library: str = "demo",
        config: Optional[ProphetConfig] = None,
        scenario_name: str = "serve_scenario",
    ) -> "EngineSpec":
        if library not in LIBRARY_BUILDERS:
            raise ServeError(
                f"unknown VG library {library!r} "
                f"(known: {sorted(LIBRARY_BUILDERS)})"
            )
        return cls(
            dsl=text,
            library=library,
            scenario_name=scenario_name,
            config=config or ProphetConfig(),
        )

    @classmethod
    def from_builder(
        cls,
        name: str,
        *,
        config: Optional[ProphetConfig] = None,
        **builder_kwargs: Any,
    ) -> "EngineSpec":
        if name not in SCENARIO_BUILDERS:
            raise ServeError(
                f"unknown scenario builder {name!r} "
                f"(known: {sorted(SCENARIO_BUILDERS)})"
            )
        return cls(
            builder=name,
            builder_args=tuple(sorted(builder_kwargs.items())),
            scenario_name=name,
            config=config or ProphetConfig(),
        )

    def __post_init__(self) -> None:
        if (self.dsl is None) == (self.builder is None):
            raise ServeError("EngineSpec needs exactly one of dsl= or builder=")

    def content_hash(self) -> str:
        """Digest of everything that determines the engine's behavior."""
        payload = json.dumps(
            {
                "dsl": self.dsl,
                "library": self.library,
                "builder": self.builder,
                "builder_args": [[k, repr(v)] for k, v in self.builder_args],
                "config": {
                    "n_worlds": self.config.n_worlds,
                    "base_seed": self.config.base_seed,
                    "fingerprint_seeds": self.config.fingerprint_seeds,
                    "correlation_tolerance": self.config.correlation_tolerance,
                    "min_mapped_fraction": self.config.min_mapped_fraction,
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def build_scenario(self) -> tuple[Any, Any]:
        """The (scenario, library) pair this spec describes (no engine)."""
        if self.builder is not None:
            return SCENARIO_BUILDERS[self.builder](**dict(self.builder_args))
        scenario = parse_scenario(self.dsl, name=self.scenario_name)
        return scenario, LIBRARY_BUILDERS[self.library]()

    def build(self) -> ProphetEngine:
        scenario, library = self.build_scenario()
        return ProphetEngine(scenario, library, self.config)


#: Per-process engine cache: one engine per spec, reused across shard tasks.
_WORKER_ENGINES: dict[str, ProphetEngine] = {}


def _engine_for(spec: EngineSpec) -> ProphetEngine:
    key = spec.content_hash()
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = spec.build()
        _WORKER_ENGINES[key] = engine
    return engine


def sample_shard_task(
    spec: EngineSpec,
    alias: str,
    point_items: tuple[tuple[str, Any], ...],
    worlds: tuple[int, ...],
) -> np.ndarray:
    """Process-pool task: fresh samples of one output over one world shard."""
    engine = _engine_for(spec)
    return engine.sample_fresh(alias, dict(point_items), worlds)


def worker_engine_count() -> int:
    """How many engines this process has built (observability/testing)."""
    return len(_WORKER_ENGINES)

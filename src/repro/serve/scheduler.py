"""Job scheduler: many logical sessions sharing one evaluation service.

Sessions — interactive :class:`~repro.core.online.OnlineSession` users,
:class:`~repro.core.offline.OfflineOptimizer` sweeps, CLI batch runs —
submit point-evaluation and sweep jobs to one :class:`Scheduler`. The
scheduler:

* **deduplicates identical in-flight points**: a job whose canonical
  (point, worlds, reuse) key matches a queued or running job coalesces
  onto it and receives the same result when it completes;
* drives every evaluation through the shared
  :class:`~repro.serve.service.EvaluationService`, so all sessions benefit
  from the same coordinator reuse layers, shard pool, and result cache;
* rolls sweep results up into mergeable week-axis aggregates
  (:class:`~repro.core.aggregator.MergeableAxisStats`), merged point by
  point exactly as shard statistics merge.

Execution is synchronous and deterministic: ``run_pending`` drains the
queue in FIFO order (the parallelism lives below, in the service's shard
pool). That keeps scheduling decisions reproducible — the same submissions
always produce the same evaluations in the same order.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.core.aggregator import MergeableAxisStats
from repro.core.engine import PointEvaluation, PointEvaluator
from repro.core.rounds import RoundPlan
from repro.errors import ServeError, TransientServeError
from repro.obs.trace import NULL_TRACER
from repro.serve.service import EvaluationService

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class Job:
    """One point-evaluation request from one logical session."""

    id: int
    session: str
    point: dict[str, Any]
    worlds: tuple[int, ...]
    reuse: bool
    key: tuple
    status: str = PENDING
    result: Optional[PointEvaluation] = None
    error: Optional[str] = None
    #: The original exception of a failed job (``error`` is its rendering).
    exception: Optional[BaseException] = field(default=None, repr=False)
    #: id of the identical in-flight job this one coalesced onto, if any.
    coalesced_with: Optional[int] = None
    elapsed_seconds: float = 0.0
    #: How many times this job was re-run after a transient serve failure
    #: (the error taxonomy in :mod:`repro.errors`; permanent failures are
    #: never retried).
    attempts: int = 0

    @property
    def done(self) -> bool:
        return self.status == DONE

    def evaluation(self) -> PointEvaluation:
        if self.result is None:
            raise ServeError(
                f"job {self.id} has no result (status: {self.status})"
            )
        return self.result


@dataclass
class SweepJob:
    """A grid sweep: one member job per point, plus merged aggregates."""

    id: int
    session: str
    jobs: list[Job] = field(default_factory=list)
    _aggregate: Optional[MergeableAxisStats] = field(default=None, repr=False)
    _aggregated_points: int = field(default=0, repr=False)

    @property
    def done(self) -> bool:
        return all(job.status in (DONE, FAILED) for job in self.jobs)

    def evaluations(self) -> list[PointEvaluation]:
        return [job.result for job in self.jobs if job.result is not None]

    @property
    def aggregate(self) -> Optional[MergeableAxisStats]:
        """Week-axis moments merged over the finished member evaluations.

        Computed lazily on first access (exact summation is pure Python —
        sweeps that never read the aggregate pay nothing) over every
        evaluation that carried sample matrices; result-cache hits ship no
        samples and are skipped, :attr:`aggregated_points` says how many
        contributed.
        """
        if self._aggregate is None and self.done:
            merged: Optional[MergeableAxisStats] = None
            contributed = 0
            for job in self.jobs:
                if job.result is None or not job.result.samples:
                    continue
                stats = MergeableAxisStats.from_matrices(job.result.samples)
                if merged is None:
                    merged = stats
                else:
                    merged.merge(stats)
                contributed += 1
            self._aggregate = merged
            self._aggregated_points = contributed
        return self._aggregate

    @property
    def aggregated_points(self) -> int:
        self.aggregate  # noqa: B018 — force the lazy computation
        return self._aggregated_points


@dataclass
class AdaptivePointState:
    """One sweep point's progress through the adaptive budget allocator."""

    index: int
    point: dict[str, Any]
    evaluator: PointEvaluator
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)
    retired_early: bool = False
    finalized: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def result(self) -> Optional[PointEvaluation]:
        return self.evaluator.result


@dataclass
class AdaptiveSweepJob:
    """An adaptive sweep: per-point round evaluators plus the shared budget.

    ``worlds_freed`` is the budget retired points handed back (their plan
    budget minus what they actually spent); phase 2 of the allocator spends
    it extending unresolved points.
    """

    id: int
    session: str
    plan: RoundPlan
    target_ci: float
    z: float
    reuse: bool
    states: list[AdaptivePointState] = field(default_factory=list)
    worlds_freed: int = 0
    _driver: Optional[Any] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return all(state.finalized for state in self.states)

    @property
    def worlds_budgeted(self) -> int:
        return self.plan.n_worlds * len(self.states)

    @property
    def worlds_spent(self) -> int:
        return sum(state.evaluator.worlds_spent for state in self.states)


class JobQueue:
    """FIFO queue with an index of in-flight jobs by canonical key."""

    def __init__(self) -> None:
        self._pending: list[Job] = []
        self._inflight: dict[tuple, Job] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def find_inflight(self, key: tuple) -> Optional[Job]:
        return self._inflight.get(key)

    def push(self, job: Job) -> None:
        self._pending.append(job)
        self._inflight[job.key] = job

    def pop(self) -> Optional[Job]:
        if not self._pending:
            return None
        job = self._pending.pop(0)
        job.status = RUNNING
        return job

    def finish(self, job: Job) -> None:
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]


class Scheduler:
    """Accepts jobs from many sessions; drives them through one service.

    ``history_limit`` bounds :attr:`completed`: finished jobs (whose
    results hold full sample matrices) are archived in a ring so a
    long-lived scheduler serving interactive sessions does not grow
    without bound. ``jobs_completed`` counts them all.

    ``job_retries`` is the job-level rung of the fault-tolerance ladder:
    an evaluation that failed with a *transient* error (the
    :class:`~repro.errors.TransientServeError` taxonomy — crashed pool,
    deadline expiry, retry exhaustion with rescue off) is re-run up to
    this many times before the job is marked ``FAILED``; permanent errors
    surface as ``FAILED`` immediately, first time. Defaults to the
    service's :class:`~repro.serve.resilience.ResilienceConfig`.
    """

    def __init__(
        self,
        service: EvaluationService,
        history_limit: int = 256,
        job_retries: Optional[int] = None,
    ) -> None:
        self.service = service
        self.queue = JobQueue()
        self._ids = itertools.count(1)
        self._followers: dict[int, list[Job]] = {}
        self.completed: deque[Job] = deque(maxlen=history_limit)
        self.jobs_completed = 0
        self.dedup_hits = 0
        self.job_retries = (
            service.resilience.job_retries if job_retries is None else job_retries
        )
        if self.job_retries < 0:
            raise ServeError(f"job_retries must be >= 0, got {self.job_retries}")
        #: Total transient re-runs across all jobs (fleet observability).
        self.jobs_retried = 0
        #: Adaptive sampling counters: points retired before their fixed
        #: budget, worlds actually evaluated vs worlds the fixed budget
        #: would have spent. All deterministic (no wall-clock involved).
        self.jobs_retired_early = 0
        self.worlds_spent = 0
        self.worlds_budgeted = 0
        self._adaptive_sweeps: list[AdaptiveSweepJob] = []
        #: Observability: job lifecycle spans; the API client replaces this
        #: shared no-op when tracing is configured.
        self.tracer = NULL_TRACER

    # -- submission --------------------------------------------------------

    def submit(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        session: str = "default",
        reuse: bool = True,
    ) -> Job:
        """Queue one point evaluation; identical in-flight points coalesce."""
        scenario = self.service.scenario
        validated = scenario.validate_sweep_point(point)
        chosen = (
            tuple(worlds)
            if worlds is not None
            else tuple(range(self.service.engine.config.n_worlds))
        )
        key = (scenario.sweep_space.point_key(validated), chosen, reuse)
        job = Job(
            id=next(self._ids),
            session=session,
            point=validated,
            worlds=chosen,
            reuse=reuse,
            key=key,
        )
        primary = self.queue.find_inflight(key)
        if primary is not None:
            self.dedup_hits += 1
            job.coalesced_with = primary.id
            self._followers.setdefault(primary.id, []).append(job)
            return job
        self.queue.push(job)
        return job

    def submit_sweep(
        self,
        points: Optional[Iterable[Mapping[str, Any]]] = None,
        *,
        worlds: Optional[Sequence[int]] = None,
        session: str = "default",
        reuse: bool = True,
    ) -> SweepJob:
        """Queue a sweep (defaults to the full axis-excluded grid)."""
        scenario = self.service.scenario
        if points is None:
            points = scenario.space.grid(exclude=[scenario.axis])
        sweep = SweepJob(id=next(self._ids), session=session)
        for point in points:
            sweep.jobs.append(
                self.submit(point, worlds=worlds, session=session, reuse=reuse)
            )
        if not sweep.jobs:
            raise ServeError("sweep has no points")
        return sweep

    def submit_adaptive(
        self,
        points: Optional[Iterable[Mapping[str, Any]]] = None,
        *,
        target_ci: float,
        plan: Optional[RoundPlan] = None,
        z: float = 1.96,
        session: str = "default",
        reuse: bool = True,
    ) -> AdaptiveSweepJob:
        """Queue an adaptive sweep driven by the CI budget allocator.

        Each point runs in growing world-prefix rounds (``plan`` defaults to
        the engine config's ladder) and retires once its worst CI half-width
        is at most ``target_ci``; budget retired points did not spend is
        reassigned to unresolved points. Every round is a regular scheduler
        job — it flows through the same queue, dedup, retry ladder, and
        sharded service as a fixed-budget evaluation.

        Stopping decisions are pure functions of the accumulated statistics
        (which are bitwise identical across executors and shard geometry),
        so identical submissions retire identical points after identical
        rounds on every run.
        """
        scenario = self.service.scenario
        if points is None:
            points = scenario.space.grid(exclude=[scenario.axis])
        if target_ci <= 0.0:
            raise ServeError(f"target_ci must be > 0, got {target_ci}")
        chosen_plan = plan if plan is not None else self.service.engine.config.plan()
        sweep = AdaptiveSweepJob(
            id=next(self._ids),
            session=session,
            plan=chosen_plan,
            target_ci=target_ci,
            z=z,
            reuse=reuse,
        )
        for index, point in enumerate(points):
            validated = scenario.validate_sweep_point(point)
            evaluator = PointEvaluator(
                self.service.engine,
                validated,
                plan=chosen_plan,
                target_ci=target_ci,
                z=z,
                reuse=reuse,
                evaluate=self._round_evaluate(session),
                tracer=self.tracer,
            )
            sweep.states.append(
                AdaptivePointState(index=index, point=validated, evaluator=evaluator)
            )
        if not sweep.states:
            raise ServeError("sweep has no points")
        self.worlds_budgeted += sweep.worlds_budgeted
        sweep._driver = self._drive_adaptive(sweep)
        self._adaptive_sweeps.append(sweep)
        return sweep

    def advance_adaptive(self, sweep: AdaptiveSweepJob) -> bool:
        """Run the allocator's next round; False once the sweep is done.

        The streaming primitive behind ``repro.api``'s adaptive sweep
        handle, mirroring what :meth:`run_next` is for fixed sweeps.
        """
        if sweep._driver is None:
            raise ServeError("not an adaptive sweep submitted to this scheduler")
        try:
            next(sweep._driver)
            return True
        except StopIteration:
            return False

    def run_adaptive(self, sweep: AdaptiveSweepJob) -> AdaptiveSweepJob:
        """Drive an adaptive sweep to completion (blocking)."""
        while self.advance_adaptive(sweep):
            pass
        return sweep

    def _round_evaluate(self, session: str):
        """An ``evaluate_point``-compatible callable that routes one round
        through the job queue — so dedup, job retries, and the sharded
        service's resilience ladder apply to every round unchanged."""

        def evaluate(point, *, worlds, reuse=True, sampler=None):
            job = self.submit(point, worlds=worlds, session=session, reuse=reuse)
            while job.status in (PENDING, RUNNING):
                if self.run_next() is None:
                    raise ServeError(
                        f"queue drained with round job {job.id} unresolved"
                    )
            if job.status == FAILED:
                if job.exception is not None:
                    raise job.exception
                raise ServeError(f"round evaluation failed: {job.error}")
            return job.evaluation()

        return evaluate

    def _drive_adaptive(self, sweep: AdaptiveSweepJob):
        """The budget allocator (a generator: one yield per completed round).

        Phase 1 — the ladder: every active point steps through its round
        plan; a point whose target half-width is met retires and frees its
        unspent budget. Phase 2 — reallocation: the freed pool extends
        unresolved points past the plan, in submission order, one
        geometric-growth round at a time, until the pool is dry or every
        point resolves. A point whose round evaluation fails (permanently)
        is marked failed and frees nothing; the sweep continues.
        """
        active = [s for s in sweep.states]
        while active:
            still_active: list[AdaptivePointState] = []
            for state in active:
                stepped = self._step_state(sweep, state)
                if stepped:
                    yield state
                if state.finalized:
                    continue
                if state.evaluator.finished:
                    self._finalize_state(sweep, state)
                else:
                    still_active.append(state)
            active = still_active
        pool = sweep.worlds_freed
        while pool > 0:
            unresolved = [
                s
                for s in sweep.states
                if not s.failed and not s.evaluator.converged
            ]
            if not unresolved:
                break
            progressed = False
            for state in unresolved:
                if pool <= 0:
                    break
                spent = state.evaluator.worlds_spent
                target = min(sweep.plan.next_boundary(spent), spent + pool)
                if target <= spent:
                    continue
                state.finalized = False
                stepped = self._step_state(sweep, state, prefix=target)
                if stepped:
                    added = state.evaluator.worlds_spent - spent
                    pool -= added
                    self.worlds_spent += added
                    progressed = True
                    yield state
                self._finalize_state(sweep, state, count_spend=False)
            if not progressed:
                break
        for state in sweep.states:
            if not state.finalized:
                self._finalize_state(sweep, state)

    def _step_state(
        self,
        sweep: AdaptiveSweepJob,
        state: AdaptivePointState,
        prefix: Optional[int] = None,
    ) -> bool:
        """One round for one point; failures mark the state, never raise."""
        try:
            state.evaluator.step(prefix=prefix)
            return True
        except Exception as error:  # noqa: BLE001 — recorded per point
            state.error = str(error)
            state.exception = error
            self._finalize_state(sweep, state)
            return False

    def _finalize_state(
        self,
        sweep: AdaptiveSweepJob,
        state: AdaptivePointState,
        count_spend: bool = True,
    ) -> None:
        """Book a point's spend and, on early convergence, free its budget."""
        if state.finalized:
            return
        state.finalized = True
        if state.failed:
            return
        spent = state.evaluator.worlds_spent
        if count_spend:
            self.worlds_spent += spent
        if state.evaluator.converged and spent < sweep.plan.n_worlds:
            state.retired_early = True
            sweep.worlds_freed += sweep.plan.n_worlds - spent
            self.jobs_retired_early += 1

    def adaptive_report(self) -> Optional[dict[str, Any]]:
        """Per-point adaptive outcomes, or ``None`` if never used.

        Optional by design: fixed-budget runs must keep byte-identical
        stats output, so this only exists once an adaptive sweep ran.
        """
        if not self._adaptive_sweeps:
            return None
        points: list[dict[str, Any]] = []
        for sweep in self._adaptive_sweeps:
            for state in sweep.states:
                points.append(
                    {
                        "point": dict(state.point),
                        "worlds_spent": state.evaluator.worlds_spent,
                        "rounds": len(state.evaluator.rounds),
                        "max_ci": state.evaluator.max_ci,
                        "converged": state.evaluator.converged,
                        "retired_early": state.retired_early,
                        "failed": state.failed,
                    }
                )
        return {
            "target_ci": self._adaptive_sweeps[-1].target_ci,
            "worlds_budgeted": self.worlds_budgeted,
            "worlds_spent": self.worlds_spent,
            "jobs_retired_early": self.jobs_retired_early,
            "points": points,
        }

    # -- execution ---------------------------------------------------------

    def run_next(self) -> Optional[Job]:
        """Run the oldest pending job to completion; ``None`` when idle.

        The streaming primitive behind ``repro.api``'s sweep handle: callers
        step the queue one job at a time and consume each result as it
        lands, instead of blocking on the whole sweep. Coalesced followers
        complete together with their primary, exactly as in
        :meth:`run_pending` (which is this, in a loop).
        """
        job = self.queue.pop()
        if job is None:
            return None
        # repro-lint: disable=DET001 -- feeds Job.elapsed_seconds, an
        # observability field; scheduling decisions never read it.
        started = time.perf_counter()
        with self.tracer.span("job", job=job.id, session=job.session) as span:
            while True:
                try:
                    job.result = self.service.evaluate(
                        job.point, worlds=job.worlds, reuse=job.reuse
                    )
                    job.status = DONE
                except TransientServeError as error:
                    # The substrate failed, not the question: re-running the
                    # whole evaluation is bit-identical by shard purity, and
                    # the pool underneath was healed by the dispatcher.
                    if job.attempts < self.job_retries:
                        job.attempts += 1
                        self.jobs_retried += 1
                        continue
                    job.status = FAILED
                    job.error = str(error)
                    job.exception = error
                except Exception as error:
                    # Permanent (deterministic) failures surface immediately:
                    # retrying would only repeat them.
                    job.status = FAILED
                    job.error = str(error)
                    job.exception = error
                break
            span.set(status=job.status, attempts=job.attempts)
        # repro-lint: disable=DET001 -- observability only (see above).
        job.elapsed_seconds = time.perf_counter() - started
        self.queue.finish(job)
        for follower in self._followers.pop(job.id, ()):
            follower.result = job.result
            follower.status = job.status
            follower.error = job.error
            follower.exception = job.exception
        self.completed.append(job)
        self.jobs_completed += 1
        return job

    def run_pending(self) -> list[Job]:
        """Drain the queue; returns the jobs completed by this call."""
        finished: list[Job] = []
        while True:
            job = self.run_next()
            if job is None:
                break
            finished.append(job)
        return finished

    def reuse_summary(self) -> dict[str, Any]:
        """One dict of every reuse-layer counter behind this scheduler.

        Rolls up the coordinator engine's basis counters and tier
        (eviction/spill/fault) stats with the service's result-cache and
        cross-shard reuse counters — the CLI ``--stats`` block and
        benchmark reports read this instead of poking four objects.
        """
        engine = self.service.engine
        stats = self.service.stats
        tier = engine.storage.tier
        return {
            "jobs_completed": self.jobs_completed,
            "jobs_retried": self.jobs_retried,
            "dedup_hits": self.dedup_hits,
            "jobs_retired_early": self.jobs_retired_early,
            "worlds_spent": self.worlds_spent,
            "worlds_budgeted": self.worlds_budgeted,
            "result_cache_hits": stats.cache_hits,
            "result_cache_misses": stats.cache_misses,
            "basis_exact_hits": engine.storage.exact_hits,
            "basis_mapped_hits": engine.storage.mapped_hits,
            "basis_misses": engine.storage.misses,
            "basis_resident": tier.resident_count,
            "basis_resident_bytes": tier.resident_bytes,
            "basis_spilled": tier.spilled_count,
            **{f"tier_{k}": v for k, v in tier.stats.as_dict().items()},
            "shard_exact_hits": stats.shard_exact_hits,
            "shard_mapped_hits": stats.shard_mapped_hits,
            "shard_fresh": stats.shard_fresh,
            "snapshot_bases_shipped": stats.snapshot_bases_shipped,
            "sampled_batched": stats.sampled_batched,
            "sampled_fallback": stats.sampled_fallback,
            "shard_retries": stats.shard_retries,
            "shard_timeouts": stats.shard_timeouts,
            "pool_rebuilds": stats.pool_rebuilds,
            "inline_rescues": stats.inline_rescues,
            "bytes_shipped": stats.bytes_shipped,
            "bytes_zero_copy": stats.bytes_zero_copy,
            "segments_leased": stats.segments_leased,
            "segments_reclaimed": stats.segments_reclaimed,
            "transport_fallbacks": stats.transport_fallbacks,
        }

    def evaluate(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        session: str = "default",
        reuse: bool = True,
    ) -> PointEvaluation:
        """Submit one point and run the queue to completion (blocking).

        A failed evaluation re-raises the original exception, so callers
        see the same error types the sequential path would raise.
        """
        job = self.submit(point, worlds=worlds, session=session, reuse=reuse)
        self.run_pending()
        if job.status == FAILED:
            if job.exception is not None:
                raise job.exception
            raise ServeError(f"evaluation failed: {job.error}")
        return job.evaluation()

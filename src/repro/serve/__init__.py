"""``repro.serve`` — sharded parallel evaluation service.

Turns the single-process :class:`~repro.core.engine.ProphetEngine` into a
concurrent evaluation service: the fixed world-seed sequence is partitioned
into contiguous shards evaluated in a process pool (with an in-process
fallback executor), a job scheduler lets many logical sessions share one
pool with in-flight deduplication, and a persistent cross-run result cache
serves repeated questions instantly.

Reuse layers, in the order they fire for one evaluation request:

1. **result cache** (:class:`ResultCache`) — the exact (scenario, point,
   worlds, seeds) was answered before, possibly by another run;
2. **exact basis hit / stats cache** — the coordinator engine already holds
   these samples or statistics in memory;
3. **fingerprint map** — a correlated parameterization's samples are
   remapped, only unmapped components are simulated;
4. **cross-shard snapshot reuse** — shard tasks consult a read-only
   snapshot of the coordinator's hot bases and serve their world slice by
   exact or mapped reuse where a basis covers the shard but not the full
   requested slice;
5. **sharded fresh sampling** — whatever survives all reuse is sharded
   across workers, deterministically, and merged bit-identically.

Every shard fan-out goes through the fault-tolerance ladder in
:mod:`repro.serve.resilience` — per-shard deadlines, bounded deterministic
retries, pool self-healing, and inline rescue as the last rung — so a
faulty substrate costs time, never answers; :mod:`repro.serve.faults`
provides the deterministic chaos harness that proves it.

Bulk shard payloads (world slices, sample matrices, basis snapshots) can
optionally ride named shared-memory segments instead of task pickles —
:mod:`repro.serve.transport`, ``TransportConfig(shard_transport="shm")`` —
with byte-identical results and O(1) task pickles in the world count.
"""

from repro.serve.cache import CachedResult, ResultCache, result_key, scenario_fingerprint
from repro.serve.executors import (
    InlineExecutor,
    ProcessExecutor,
    create_executor,
)
from repro.serve.faults import (
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.serve.resilience import ResilienceConfig, ShardCall, ShardDispatcher
from repro.serve.scheduler import Job, JobQueue, Scheduler, SweepJob
from repro.serve.service import EvaluationService, ServiceStats
from repro.serve.sharding import WorldShard, plan_shards
from repro.serve.transport import (
    SegmentArena,
    SegmentRef,
    TransportConfig,
    shm_available,
)
from repro.serve.worker import (
    BasisSnapshot,
    EngineSpec,
    LIBRARY_BUILDERS,
    SCENARIO_BUILDERS,
    ShardSample,
)

__all__ = [
    "BasisSnapshot",
    "CachedResult",
    "EngineSpec",
    "EvaluationService",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InlineExecutor",
    "Job",
    "JobQueue",
    "LIBRARY_BUILDERS",
    "ProcessExecutor",
    "ResilienceConfig",
    "ResultCache",
    "SCENARIO_BUILDERS",
    "Scheduler",
    "SegmentArena",
    "SegmentRef",
    "ServiceStats",
    "ShardCall",
    "ShardDispatcher",
    "ShardSample",
    "SweepJob",
    "TransportConfig",
    "WorldShard",
    "create_executor",
    "plan_shards",
    "result_key",
    "scenario_fingerprint",
    "shm_available",
]

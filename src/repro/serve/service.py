"""The evaluation service: sharded parallel point evaluation + result cache.

:class:`EvaluationService` wraps one coordinator :class:`ProphetEngine` and
turns `evaluate` into a concurrent, cached operation:

1. **Result cache** (optional, persistent): if the exact (scenario, point,
   worlds, seed config) was ever answered before — by this process or any
   previous run — the stored statistics are returned without touching the
   engine.
2. **Coordinator reuse**: otherwise the coordinator engine runs its normal
   evaluation cycle — stats cache, exact basis hits, fingerprint-mapped
   reuse, the week memo — exactly as the sequential path would. Reuse
   decisions stay on the coordinator so they never depend on worker
   scheduling.
3. **Cross-shard basis reuse + sharded sampling**: only the samples no
   coordinator reuse layer could serve are sharded across the executor.
   Each shard task receives a read-only :class:`BasisSnapshot` of the
   coordinator's hot in-memory bases and serves its shard through the
   ordinary Storage Manager acquire path — an exact or fingerprint-mapped
   hit skips fresh simulation for the shard's mapped components — before
   falling back to fresh sampling from the fixed seed sequence. The shard
   bases ship back and merge, in shard order, into the entry the
   coordinator stores.

The snapshot contains only bases the coordinator *could not* use — ones
overlapping the requested worlds without covering the full slice — so a
shard hit can never contradict a coordinator decision. For uniform-world
workloads (full sweeps, fixed-prefix refreshes) every basis covers the
full slice, the snapshot is empty, and sharded evaluation stays
bit-identical to sequential for any shard count and either executor with
zero shipping overhead; mixed-world workloads (progressive refinement +
full refresh) gain mapped-reuse hits the fresh-only fan-out never had.
``reuse=False`` disables shard reuse entirely and restores the pure
fresh-sampling fan-out.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.aggregator import MergeableAxisStats
from repro.core.engine import PointEvaluation, ProphetEngine, StageTimings
from repro.core.instance import InstanceBatch
from repro.core.scenario import VGOutput
from repro.core.storage import BasisEntry, ReuseReport
from repro.errors import ServeError
from repro.obs.trace import NULL_TRACER
from repro.serve.cache import ResultCache, result_key, scenario_fingerprint
from repro.serve.executors import InlineExecutor, create_executor
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.resilience import ResilienceConfig, ShardCall, ShardDispatcher
from repro.serve.sharding import plan_shards
from repro.serve.transport import (
    SegmentArena,
    SegmentLease,
    SegmentRef,
    ShmShard,
    SnapshotRef,
    TransportConfig,
    acquire_shard_shm,
    acquire_shard_task_shm,
    fresh_shard_shm,
    generation_nbytes,
    logical_nbytes,
    pack_snapshot,
    sample_shard_task_shm,
    shm_available,
    snapshot_nbytes,
)
from repro.serve.worker import (
    BasisSnapshot,
    EngineSpec,
    ShardSample,
    acquire_shard,
    acquire_shard_task,
    build_snapshot_store,
    fresh_shard,
    sample_shard_task,
)


@dataclass
class ServiceStats:
    """Counters for one service instance."""

    points_evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shard_tasks: int = 0
    #: Shard *generations*: one per fresh-sampling fan-out (one contiguous
    #: world slice sharded, dispatched, merged). Under the round protocol a
    #: round's fresh increment is exactly one generation per VG output —
    #: the invariant that lets the dispatcher's resilience ladder apply to
    #: every round unchanged, and that tests pin.
    shard_generations: int = 0
    sampled_worlds: int = 0
    parallel_seconds: float = 0.0
    #: Cross-shard basis reuse: how each shard task was served (exact hit
    #: against the shipped snapshot, fingerprint-mapped from it, or fresh),
    #: and how much snapshot state was shipped to make that possible.
    #: ``shard_exact_hits`` is expected to stay 0 under the current design
    #: (the engine's extend path consumes same-args coverage before the
    #: sampler runs); it exists as an invariant check, not a hot counter.
    shard_exact_hits: int = 0
    shard_mapped_hits: int = 0
    shard_fresh: int = 0
    snapshots_shipped: int = 0
    snapshot_bases_shipped: int = 0
    #: Sampling-plane dispatch across the whole fleet (coordinator and
    #: workers): fresh world-rows produced by the batched backend vs by the
    #: per-world loop, so silent fallback to the slow path is observable
    #: even when it happens inside a worker process.
    sampled_batched: int = 0
    sampled_fallback: int = 0
    #: The fault-tolerance ladder (see :mod:`repro.serve.resilience`): how
    #: many shard submissions were retried after a transient failure, how
    #: many missed their deadline, how many times the process pool was
    #: rebuilt to heal a crash or hang, and how many shards were re-run
    #: inline on the coordinator as the last resort. All zero on a healthy
    #: substrate.
    shard_retries: int = 0
    shard_timeouts: int = 0
    pool_rebuilds: int = 0
    inline_rescues: int = 0
    #: Shard transport (see :mod:`repro.serve.transport`). ``bytes_shipped``
    #: counts logical payload bytes (world ids, snapshot matrices, sample
    #: matrices) that crossed a process boundary through pickle;
    #: ``bytes_zero_copy`` counts the same logical bytes when they moved
    #: through shared-memory segments instead. Segment lease/reclaim
    #: counters must end a session equal — the leak assertion the chaos
    #: suite pins. ``transport_fallbacks`` counts generations that wanted
    #: shm but ran pickle (platform without shm, payload over the segment
    #: cap) — silent degradation, made observable.
    bytes_shipped: int = 0
    bytes_zero_copy: int = 0
    segments_leased: int = 0
    segments_reclaimed: int = 0
    transport_fallbacks: int = 0
    #: Wall-clock measured *inside* shard executions (worker processes or
    #: the inline executor) and shipped back in each ShardSample. Like
    #: ``parallel_seconds`` it is excluded from :meth:`as_dict` — timing is
    #: surfaced through :class:`repro.obs.TimingReport`, never the stable
    #: counter JSON.
    worker_seconds: float = 0.0

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def shard_reuse_rate(self) -> float:
        """Fraction of shard tasks served by snapshot reuse (exact or mapped)."""
        reused = self.shard_exact_hits + self.shard_mapped_hits
        total = reused + self.shard_fresh
        return reused / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Deterministic counters only — ``parallel_seconds`` (wall-clock)
        is excluded so the dict is stable across identical runs; the unified
        :class:`repro.api.StatsReport` relies on that."""
        return {
            "points_evaluated": self.points_evaluated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shard_tasks": self.shard_tasks,
            "shard_generations": self.shard_generations,
            "sampled_worlds": self.sampled_worlds,
            "shard_exact_hits": self.shard_exact_hits,
            "shard_mapped_hits": self.shard_mapped_hits,
            "shard_fresh": self.shard_fresh,
            "snapshots_shipped": self.snapshots_shipped,
            "snapshot_bases_shipped": self.snapshot_bases_shipped,
            "sampled_batched": self.sampled_batched,
            "sampled_fallback": self.sampled_fallback,
            "shard_retries": self.shard_retries,
            "shard_timeouts": self.shard_timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "inline_rescues": self.inline_rescues,
            "bytes_shipped": self.bytes_shipped,
            "bytes_zero_copy": self.bytes_zero_copy,
            "segments_leased": self.segments_leased,
            "segments_reclaimed": self.segments_reclaimed,
            "transport_fallbacks": self.transport_fallbacks,
        }


@dataclass
class _Generation:
    """One fan-out's transport state: its segment lease and descriptors."""

    lease: SegmentLease
    worlds_refs: list[SegmentRef]
    result_refs: list[SegmentRef]
    snapshot_ref: Optional[SnapshotRef]


class EvaluationService:
    """Concurrent, cached scenario evaluation over one coordinator engine."""

    def __init__(
        self,
        spec: Optional[EngineSpec] = None,
        *,
        engine: Optional[ProphetEngine] = None,
        executor: Any = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        cache_dir: Optional[str] = None,
        min_shard_worlds: int = 8,
        share_bases: bool = True,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        transport: Optional[TransportConfig] = None,
    ) -> None:
        if spec is None and engine is None:
            raise ServeError("EvaluationService needs a spec= or an engine=")
        self.spec = spec
        self.engine = engine if engine is not None else spec.build()
        if executor is None and spec is None:
            # Without a spec, process workers cannot build engines — the
            # only valid default is the in-process executor.
            executor = InlineExecutor()
        if spec is not None and engine is not None:
            # Workers sample from the spec while the coordinator merges with
            # this engine — they must describe the same evaluation or the
            # merged matrices silently mix seed streams.
            if spec.config != engine.config:
                raise ServeError(
                    "spec= and engine= carry different ProphetConfigs"
                )
            spec_scenario, spec_library = spec.build_scenario()
            if scenario_fingerprint(
                spec_scenario, spec_library
            ) != scenario_fingerprint(engine.scenario, engine.library):
                raise ServeError(
                    "spec= describes a different scenario/library than engine="
                )
        self.executor = (
            executor if executor is not None else create_executor("auto", workers)
        )
        if self.executor.kind == "process" and spec is None:
            raise ServeError(
                "a process executor needs an EngineSpec so workers can "
                "build their own engines; pass spec= or use an inline executor"
            )
        self.n_shards = shards if shards is not None else self.executor.workers
        if self.n_shards < 1:
            raise ServeError(f"shards must be >= 1, got {self.n_shards}")
        #: Below this many worlds a slice is not worth splitting: shard
        #: payload overhead would exceed the sampling work.
        self.min_shard_worlds = max(1, min_shard_worlds)
        #: Ship coordinator basis snapshots to shard tasks so shards reuse
        #: (exact/mapped) where the coordinator could not. Off = the pure
        #: fresh-sampling fan-out of the original serve layer.
        self.share_bases = share_bases
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.scenario = self.engine.scenario
        self._scenario_hash = scenario_fingerprint(self.scenario, self.engine.library)
        self.stats = ServiceStats()
        #: The fault-tolerance ladder applied to every shard fan-out
        #: (deadlines, bounded retries, pool self-healing, inline rescue).
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        #: Deterministic chaos harness: a fault plan wraps every dispatched
        #: shard task (coordinator-side for inline executors, inside the
        #: worker for process pools). ``None`` in production.
        self.injector = FaultInjector(fault_plan) if fault_plan is not None else None
        self._dispatcher = ShardDispatcher(
            self.executor, self.stats, self.resilience, self.injector
        )
        #: Shard transport: pickle by default; ``"shm"`` moves bulk arrays
        #: through shared-memory segments (bit-identical, descriptor-sized
        #: task pickles). Falls back to pickle — counted, never an error —
        #: where shared memory is unavailable.
        self.transport = transport if transport is not None else TransportConfig()
        self._arena = SegmentArena(ttl=self.transport.lease_ttl, stats=self.stats)
        self._shm_ok = self.transport.enabled and shm_available()
        #: Coordinator-side snapshot segment cache: one packed segment per
        #: live snapshot version (content-addressed), so sweeps that reship
        #: the same snapshot lease and pack it once, not once per fan-out.
        self._snapshot_leases: dict[str, tuple[SegmentLease, SnapshotRef]] = {}
        # Tie lease cleanup into the executor's own lifecycle: a recycled
        # pool sweeps expired leases, a shutdown pool releases everything.
        # (The dispatcher additionally sweeps after every pool heal.)
        if hasattr(self.executor, "add_recycle_hook"):
            self.executor.add_recycle_hook(self._arena.sweep_expired)
        if hasattr(self.executor, "add_teardown_hook"):
            self.executor.add_teardown_hook(self._release_transport)
        self._dispatcher.transport_sweep = self._arena.sweep_expired
        self._reuse_active = True
        self._cache_writes_enabled = True
        #: Observability: :meth:`set_tracer` replaces this shared no-op.
        self.tracer = NULL_TRACER

    def set_tracer(self, tracer: Any) -> None:
        """Attach one tracer across the service, dispatcher and engine."""
        self.tracer = tracer
        self._dispatcher.tracer = tracer
        self.engine.set_tracer(tracer)

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        reuse: bool = True,
    ) -> PointEvaluation:
        """Evaluate one point: result cache, then the sharded engine cycle."""
        validated = self.scenario.validate_sweep_point(point)
        chosen = (
            tuple(worlds)
            if worlds is not None
            else tuple(range(self.engine.config.n_worlds))
        )
        self.stats.points_evaluated += 1

        key = None
        if self.cache is not None and reuse:
            key = self._key_for(validated, chosen)
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return self._evaluation_from_cache(validated, chosen, cached.statistics)
            self.stats.cache_misses += 1

        self._reuse_active = reuse
        evaluation = self.engine.evaluate_point(
            validated, worlds=chosen, reuse=reuse, sampler=self._sharded_sampler
        )
        if self.stats.shard_exact_hits + self.stats.shard_mapped_hits > 0:
            # Shard-snapshot reuse approximates within the mapping tolerance
            # in a way that depends on the shard geometry (worker count,
            # shard plan), which the result key deliberately does not
            # include. The approximate samples also land in the engine's
            # basis store, where later evaluations (stats-cache hits, exact
            # basis hits, onward mappings) can transitively depend on them
            # — so once any shard was served by reuse, nothing more from
            # this service may enter the cross-run cache, or a run with
            # different geometry would read geometry-dependent numbers back
            # as exact. Uniform-world workloads never take shard reuse and
            # cache as before; reads stay enabled either way. The disk
            # escape hatch is closed separately: shard-reused entries are
            # tainted in the tier and never spill or persist, so a future
            # run cannot adopt them and re-launder their statistics into
            # the cache.
            self._cache_writes_enabled = False
        if (
            key is not None
            and self._cache_writes_enabled
            and not self._uses_tainted_bases(validated)
        ):
            self.cache.put(
                key,
                evaluation.statistics,
                meta={
                    "scenario": self._scenario_hash,
                    "scenario_name": self.scenario.name,
                    "point": {k: repr(v) for k, v in sorted(validated.items())},
                    "n_worlds": len(chosen),
                    "base_seed": self.engine.config.base_seed,
                },
            )
        return evaluation

    def mergeable_stats(self, evaluation: PointEvaluation) -> MergeableAxisStats:
        """Mergeable week-axis moments of an evaluation's VG sample matrices.

        The compact (``O(aliases x weeks)``) form of a point's results that
        the scheduler merges across points and shards — see
        :class:`repro.core.aggregator.MergeableAxisStats`.
        """
        if not evaluation.samples:
            raise ServeError(
                "evaluation carries no sample matrices (served from the "
                "result cache); mergeable stats need a computed evaluation"
            )
        return MergeableAxisStats.from_matrices(evaluation.samples)

    def close(self) -> None:
        self.executor.shutdown()
        # The teardown hook already released the arena when the executor
        # supports hooks; calling again is idempotent and covers foreign
        # executors passed in without the hook interface.
        self._release_transport()

    def _release_transport(self) -> None:
        """Release every transport lease this service holds (idempotent)."""
        self._snapshot_leases.clear()
        self._arena.release_all()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _uses_tainted_bases(self, validated: Mapping[str, Any]) -> bool:
        """Does any of this point's VG bases carry geometry taint?

        The per-service cache-write latch cannot see contamination that
        entered the shared engine through *another* service (or before this
        service existed); the tier's taint marks can. A point whose basis
        key is tainted is served from geometry-dependent samples no matter
        which layer (stats cache, exact hit, mapping) answered, so its
        statistics must not enter the cross-run cache.
        """
        tier = self.engine.storage.tier
        for output in self.scenario.vg_outputs:
            key = (
                self.engine.library.get(output.vg_name).name.lower(),
                tuple(output.model_arg_values(validated)),
            )
            if tier.is_tainted(key):
                return True
        return False

    def _key_for(self, validated: Mapping[str, Any], worlds: Sequence[int]) -> str:
        config = self.engine.config
        return result_key(
            self._scenario_hash,
            validated,
            worlds,
            n_worlds=len(worlds),
            base_seed=config.base_seed,
            fingerprint_seeds=config.fingerprint_seeds,
            correlation_tolerance=config.correlation_tolerance,
            min_mapped_fraction=config.min_mapped_fraction,
        )

    def _evaluation_from_cache(
        self,
        validated: dict[str, Any],
        worlds: tuple[int, ...],
        statistics,
    ) -> PointEvaluation:
        """A :class:`PointEvaluation` served entirely from the result cache.

        No sample matrices travel through the cache — ``samples`` is empty
        and every VG output reports a full ``exact`` reuse, tagged with the
        ``result_cache`` kind so observers can tell the layers apart.
        """
        reports = tuple(
            ReuseReport(
                vg_name=output.vg_name,
                args=output.model_arg_values(validated),
                source="exact",
                basis_args=output.model_arg_values(validated),
                mapped_fraction=1.0,
                components_total=self.engine.library.get(output.vg_name).n_components,
                components_recomputed=0,
                kind_counts={
                    "result_cache": self.engine.library.get(
                        output.vg_name
                    ).n_components
                },
            )
            for output in self.scenario.vg_outputs
        )
        return PointEvaluation(
            point=validated,
            statistics=statistics,
            samples={},
            reuse_reports=reports,
            timings=StageTimings(),
            n_worlds=len(worlds),
        )

    def _snapshot_for(self, output: VGOutput, batch: InstanceBatch) -> BasisSnapshot:
        """A read-only snapshot of the coordinator's hot bases for one VG.

        Ships only the in-memory bases the coordinator *could not* use for
        this request: entries overlapping the requested worlds without
        covering the full slice. An entry covering the full slice was
        already ruled on by the coordinator's own acquire (hit or rejection
        applies to every shard equally), so shipping it could only let a
        shard contradict that decision — and in uniform-world workloads
        (every basis full-covering) the snapshot is therefore empty and the
        fan-out stays the zero-overhead pure-fresh path. The shipped bases'
        fingerprints and the current target's (always present after the
        coordinator's acquire attempt) ride along so shard tasks never
        re-probe.
        """
        engine = self.engine
        vg_lower = engine.library.get(output.vg_name).name.lower()
        requested = set(batch.worlds)
        entries: list[BasisEntry] = []
        fingerprints: list[tuple[tuple[Any, ...], np.ndarray]] = []
        seen_args: set[tuple[Any, ...]] = set()
        for (name, args), entry in engine.storage.tier.memory_items():
            if name != vg_lower:
                continue
            if engine.storage.tier.is_adopted((name, args)):
                # Warm-start adoptions carry foreign seeds the coordinator
                # validates per-acquire; a snapshot store would trust them
                # blindly, so they never travel.
                continue
            entry_worlds = set(entry.worlds)
            if requested <= entry_worlds:
                continue  # full-covering: the coordinator already ruled on it
            if not (requested & entry_worlds):
                continue  # overlaps no requested world: cannot serve a shard
            entries.append(entry)
            seen_args.add(args)
        target_args = output.model_arg_values(batch.point_dict)
        seen_args.add(tuple(target_args))
        for args in seen_args:
            fingerprint = engine.registry.get_fingerprint(vg_lower, args)
            if fingerprint is not None:
                fingerprints.append((args, fingerprint.matrix))
        fingerprints.sort(key=lambda item: repr(item[0]))
        # Content-addressed version: identical snapshot content across
        # requests (common in sweeps, whose full-slice results are filtered
        # out above) hashes identically, so the worker-side seeded-store
        # cache hits instead of rebuilding once per evaluation.
        digest = hashlib.blake2b(digest_size=16)
        for entry in entries:
            digest.update(repr((entry.args, entry.worlds, entry.seeds)).encode())
            digest.update(entry.samples.tobytes())
        for args, matrix in fingerprints:
            digest.update(repr(args).encode())
            digest.update(matrix.tobytes())
        return BasisSnapshot(
            version=f"{vg_lower}:{digest.hexdigest()}",
            vg_name=output.vg_name,
            entries=tuple(entries),
            fingerprints=tuple(fingerprints),
        )

    def _sharded_sampler(self, output: VGOutput, batch: InstanceBatch) -> np.ndarray:
        """The engine's fresh-sampling stage, fanned out across shards.

        With ``share_bases`` (and ``reuse=True``) each shard task first
        consults a shipped snapshot of the coordinator's hot bases; only
        what the snapshot cannot serve is freshly sampled.
        """
        worlds = batch.worlds
        n_shards = min(self.n_shards, max(1, len(worlds) // self.min_shard_worlds))
        shards = plan_shards(worlds, n_shards)
        self.stats.shard_generations += 1
        self.stats.sampled_worlds += len(worlds)
        if len(shards) == 1:
            # Nothing to fan out — and nothing to reuse either: the
            # coordinator's own acquire already rejected every basis that
            # covers the full (= this single shard's) world slice.
            self.stats.shard_tasks += 1
            sample = fresh_shard(self.engine, output.alias, batch.point_dict, worlds)
            self._count_shard_sample(sample)
            return sample.samples

        snapshot: Optional[BasisSnapshot] = None
        if self.share_bases and self._reuse_active:
            snapshot = self._snapshot_for(output, batch)
            if not snapshot.entries:
                snapshot = None  # nothing reusable; skip the shipping cost

        point_items = tuple(sorted(batch.point_dict.items()))
        point_dict = batch.point_dict
        use_process = self.spec is not None and self.executor.kind == "process"
        inline_store = None
        if snapshot is not None and not use_process:
            # One seeded store per sampling request, shared by its shards —
            # mirroring the worker-side per-version snapshot cache.
            inline_store = build_snapshot_store(self.engine, snapshot)
        n_components = self.engine.library.get(output.vg_name).n_components
        # Shard transport: lease + pack this generation's segments (or None
        # for the pickle path — default, unavailable shm, payload over cap).
        generation = self._lease_generation(
            output, shards, n_components, snapshot, use_process
        )
        # repro-lint: disable=DET001 -- feeds stats.parallel_seconds, a
        # timing counter excluded from the byte-stable as_dict surface.
        started = time.perf_counter()
        calls = [
            self._shard_call(
                output, index, shard, snapshot, inline_store, use_process,
                point_items, point_dict, n_components, generation,
            )
            for index, shard in enumerate(shards)
        ]
        # Counters are committed at dispatch time, before any result (or
        # failure) comes back, so an error mid-fan-out cannot leave them
        # understating the work that was actually submitted.
        self.stats.shard_tasks += len(shards)
        if snapshot is not None:
            self.stats.snapshots_shipped += 1
            self.stats.snapshot_bases_shipped += len(snapshot.entries)
        if generation is None and use_process:
            # Pickle transport over a process boundary: world ids out per
            # shard, plus the full snapshot payload once per task (process
            # pools have no broadcast). Result bytes are counted at merge.
            self.stats.bytes_shipped += sum(len(s.worlds) * 8 for s in shards)
            self.stats.bytes_shipped += logical_nbytes(snapshot) * len(shards)
        try:
            # The dispatcher walks the fault-tolerance ladder: deadlines,
            # bounded retries, pool self-healing, inline rescue. On a
            # permanent error it collects every outstanding future before
            # re-raising — no in-flight work is leaked.
            with self.tracer.span(
                "dispatch",
                alias=output.alias,
                shards=len(shards),
                worlds=len(worlds),
                executor=self.executor.kind,
                snapshot_bases=len(snapshot.entries) if snapshot else 0,
                transport="shm" if generation is not None else "pickle",
            ):
                shard_samples = self._dispatcher.dispatch(calls)
        except BaseException:
            if generation is not None:
                self._arena.release(generation.lease)
            raise
        finally:
            # repro-lint: disable=DET001 -- observability only (see above).
            self.stats.parallel_seconds += time.perf_counter() - started
        try:
            with self.tracer.span(
                "merge", alias=output.alias, shards=len(shard_samples)
            ):
                parts: list[np.ndarray] = []
                any_shard_reuse = False
                for result in shard_samples:
                    self._count_shard_sample(result)
                    any_shard_reuse = any_shard_reuse or result.source != "fresh"
                    part = np.asarray(result.samples, dtype=float)
                    if generation is None and use_process:
                        self.stats.bytes_shipped += part.nbytes
                    parts.append(part)
                if any_shard_reuse:
                    # The merged matrix the engine is about to store mixes shard-
                    # reused (geometry-dependent) rows in; taint the key before
                    # the store happens so the entry can never spill or persist.
                    # Taint is sticky across put(), so the ordering is race-free.
                    self.engine.storage.tier.taint(
                        (
                            self.engine.library.get(output.vg_name).name.lower(),
                            tuple(output.model_arg_values(batch.point_dict)),
                        )
                    )
                # The shard bases shipped back in ``parts`` merge here, in shard
                # order; the engine stores the merged entry in its tiered store,
                # where the next snapshot (and every other session) can reuse it.
                # ``vstack`` copies, so the generation's segments are released
                # right after (the arena defers unmapping past any live view).
                return np.vstack(parts)
        finally:
            if generation is not None:
                self._arena.release(generation.lease)

    def _lease_generation(
        self,
        output: VGOutput,
        shards,
        n_components: int,
        snapshot: Optional[BasisSnapshot],
        use_process: bool,
    ) -> Optional[_Generation]:
        """Lease and pack one fan-out's transport segments (shm only).

        Returns ``None`` on the pickle path: transport disabled, shared
        memory unavailable on this platform, or a payload that would
        exceed the segment cap — the latter two are counted as
        ``transport_fallbacks`` (silent degradation, never an error).
        """
        if not self.transport.enabled:
            return None
        if not self._shm_ok:
            self.stats.transport_fallbacks += 1
            return None
        rows = [len(shard.worlds) for shard in shards]
        need = generation_nbytes(rows, n_components)
        if need > self.transport.segment_cap_bytes:
            self.stats.transport_fallbacks += 1
            return None
        snapshot_ref = None
        if snapshot is not None and use_process:
            snapshot_ref = self._snapshot_ref_for(snapshot)
            if snapshot_ref is None:  # snapshot alone exceeds the cap
                self.stats.transport_fallbacks += 1
                return None
        with self.tracer.span(
            "transport", alias=output.alias, shards=len(shards), bytes=need
        ):
            lease = self._arena.lease(need, label="generation")
            worlds_refs = [
                lease.pack(np.asarray(shard.worlds, dtype=np.int64))
                for shard in shards
            ]
            result_refs = [
                lease.reserve((n_rows, n_components), np.float64) for n_rows in rows
            ]
        self.stats.bytes_zero_copy += sum(ref.nbytes for ref in worlds_refs)
        self.stats.bytes_zero_copy += sum(ref.nbytes for ref in result_refs)
        return _Generation(
            lease=lease,
            worlds_refs=worlds_refs,
            result_refs=result_refs,
            snapshot_ref=snapshot_ref,
        )

    def _snapshot_ref_for(self, snapshot: BasisSnapshot) -> Optional[SnapshotRef]:
        """The packed-segment descriptor of a snapshot, cached per version.

        Snapshot versions are content-addressed, so sweeps that reship an
        identical snapshot hit the cache and pack nothing; a new version
        for the same VG evicts (releases) its predecessor's lease. Returns
        ``None`` when the snapshot alone would exceed the segment cap.
        """
        cached = self._snapshot_leases.get(snapshot.version)
        if cached is not None and self._arena.get(cached[0].name) is not None:
            self._arena.touch(cached[0])
            return cached[1]
        need = snapshot_nbytes(snapshot)
        if need > self.transport.segment_cap_bytes:
            return None
        lease = self._arena.lease(need, label=f"snapshot:{snapshot.version[:24]}")
        ref = pack_snapshot(lease, snapshot)
        vg_prefix = snapshot.version.split(":", 1)[0] + ":"
        for stale in [
            version
            for version in self._snapshot_leases
            if version.startswith(vg_prefix) and version != snapshot.version
        ]:
            old_lease, _ = self._snapshot_leases.pop(stale)
            self._arena.release(old_lease)
        self._snapshot_leases[snapshot.version] = (lease, ref)
        self.stats.bytes_zero_copy += logical_nbytes(snapshot)
        return ref

    def _shard_call(
        self,
        output: VGOutput,
        index: int,
        shard,
        snapshot: Optional[BasisSnapshot],
        inline_store,
        use_process: bool,
        point_items: tuple,
        point_dict: dict[str, Any],
        n_components: int,
        generation: Optional[_Generation] = None,
    ) -> ShardCall:
        """One shard's dispatcher call: executor task + inline rescue twin.

        The rescue closure re-runs the *same pure function* on the
        coordinator — same snapshot store contents, same worlds, same seeds
        — so a rescued shard is bit-identical to what a healthy worker
        would have returned (and, running in-process on plain arrays, it
        touches no transport segment: rescues can never leak leases).
        """
        if generation is not None:
            ticket = ShmShard(
                worlds=generation.worlds_refs[index],
                result=generation.result_refs[index],
            )
            if use_process and snapshot is not None:
                fn, args = acquire_shard_task_shm, (
                    self.spec, output.alias, point_items, ticket,
                    generation.snapshot_ref,
                )
            elif use_process:
                fn, args = sample_shard_task_shm, (
                    self.spec, output.alias, point_items, ticket,
                )
            elif snapshot is not None:
                fn, args = acquire_shard_shm, (
                    self.engine, inline_store, output.alias, point_dict, ticket,
                )
            else:
                fn, args = fresh_shard_shm, (
                    self.engine, output.alias, point_dict, ticket,
                )
        elif use_process and snapshot is not None:
            fn, args = acquire_shard_task, (
                self.spec, output.alias, point_items, shard.worlds, snapshot,
            )
        elif use_process:
            fn, args = sample_shard_task, (
                self.spec, output.alias, point_items, shard.worlds,
            )
        elif snapshot is not None:
            fn, args = acquire_shard, (
                self.engine, inline_store, output.alias, point_dict, shard.worlds,
            )
        else:
            fn, args = fresh_shard, (
                self.engine, output.alias, point_dict, shard.worlds,
            )

        if snapshot is not None:
            def rescue(worlds=shard.worlds) -> ShardSample:
                store = (
                    inline_store
                    if inline_store is not None
                    else self._rescue_store_for(snapshot)
                )
                return acquire_shard(
                    self.engine, store, output.alias, point_dict, worlds
                )
        else:
            def rescue(worlds=shard.worlds) -> ShardSample:
                return fresh_shard(self.engine, output.alias, point_dict, worlds)

        resolve = None
        if generation is not None:
            lease = generation.lease

            def resolve(payload: Any, lease=lease) -> Any:
                # Swap the returned descriptor for a view into the leased
                # result region (zero-copy; ``vstack`` copies at merge).
                # Anything else — a rescued plain sample, injected garbage
                # — passes through to the ordinary payload validation.
                if isinstance(payload, ShardSample) and isinstance(
                    payload.samples, SegmentRef
                ):
                    return replace(payload, samples=lease.view(payload.samples))
                return payload

        return ShardCall(
            fn=fn,
            args=args,
            rescue=rescue,
            expected_rows=len(shard.worlds),
            expected_components=n_components,
            resolve=resolve,
        )

    def _rescue_store_for(self, snapshot: BasisSnapshot):
        """A coordinator-side snapshot store for inline rescue of process
        shards — seeded lazily, cached per snapshot version (rescue is the
        rare path; most evaluations never build one)."""
        cached = getattr(self, "_rescue_store_cache", None)
        if cached is not None and cached[0] == snapshot.version:
            return cached[1]
        store = build_snapshot_store(self.engine, snapshot)
        self._rescue_store_cache = (snapshot.version, store)
        return store

    def _count_shard_sample(self, sample: ShardSample) -> None:
        if sample.source == "exact":
            self.stats.shard_exact_hits += 1
        elif sample.source == "mapped":
            self.stats.shard_mapped_hits += 1
        else:
            self.stats.shard_fresh += 1
        self.stats.sampled_batched += sample.sampled_batched
        self.stats.sampled_fallback += sample.sampled_fallback
        self.stats.worker_seconds += sample.elapsed_seconds

"""The evaluation service: sharded parallel point evaluation + result cache.

:class:`EvaluationService` wraps one coordinator :class:`ProphetEngine` and
turns `evaluate` into a concurrent, cached operation:

1. **Result cache** (optional, persistent): if the exact (scenario, point,
   worlds, seed config) was ever answered before — by this process or any
   previous run — the stored statistics are returned without touching the
   engine.
2. **Coordinator reuse**: otherwise the coordinator engine runs its normal
   evaluation cycle — stats cache, exact basis hits, fingerprint-mapped
   reuse, the week memo — exactly as the sequential path would. Reuse
   decisions stay on the coordinator so they never depend on worker
   scheduling.
3. **Sharded fresh sampling**: only the samples no reuse layer could serve
   are computed, and those are sharded across the executor: the world slice
   splits into contiguous shards, each worker fresh-samples its shard
   (deterministically, from the fixed seed sequence), and the merged matrix
   is bit-identical to what sequential sampling would have produced.

Because stages 2 and 3 are the sequential code path with only the fresh
sampling farmed out, sharded evaluation returns bit-identical
:class:`AxisStatistics` for any shard count and either executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.aggregator import MergeableAxisStats
from repro.core.engine import PointEvaluation, ProphetEngine, StageTimings
from repro.core.instance import InstanceBatch
from repro.core.scenario import VGOutput
from repro.core.storage import ReuseReport
from repro.errors import ServeError
from repro.serve.cache import ResultCache, result_key, scenario_fingerprint
from repro.serve.executors import InlineExecutor, create_executor
from repro.serve.sharding import plan_shards
from repro.serve.worker import EngineSpec, sample_shard_task


@dataclass
class ServiceStats:
    """Counters for one service instance."""

    points_evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shard_tasks: int = 0
    sampled_worlds: int = 0
    parallel_seconds: float = 0.0

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class EvaluationService:
    """Concurrent, cached scenario evaluation over one coordinator engine."""

    def __init__(
        self,
        spec: Optional[EngineSpec] = None,
        *,
        engine: Optional[ProphetEngine] = None,
        executor: Any = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        cache_dir: Optional[str] = None,
        min_shard_worlds: int = 8,
    ) -> None:
        if spec is None and engine is None:
            raise ServeError("EvaluationService needs a spec= or an engine=")
        self.spec = spec
        self.engine = engine if engine is not None else spec.build()
        if executor is None and spec is None:
            # Without a spec, process workers cannot build engines — the
            # only valid default is the in-process executor.
            executor = InlineExecutor()
        if spec is not None and engine is not None:
            # Workers sample from the spec while the coordinator merges with
            # this engine — they must describe the same evaluation or the
            # merged matrices silently mix seed streams.
            if spec.config != engine.config:
                raise ServeError(
                    "spec= and engine= carry different ProphetConfigs"
                )
            spec_scenario, spec_library = spec.build_scenario()
            if scenario_fingerprint(
                spec_scenario, spec_library
            ) != scenario_fingerprint(engine.scenario, engine.library):
                raise ServeError(
                    "spec= describes a different scenario/library than engine="
                )
        self.executor = (
            executor if executor is not None else create_executor("auto", workers)
        )
        if self.executor.kind == "process" and spec is None:
            raise ServeError(
                "a process executor needs an EngineSpec so workers can "
                "build their own engines; pass spec= or use an inline executor"
            )
        self.n_shards = shards if shards is not None else self.executor.workers
        if self.n_shards < 1:
            raise ServeError(f"shards must be >= 1, got {self.n_shards}")
        #: Below this many worlds a slice is not worth splitting: shard
        #: payload overhead would exceed the sampling work.
        self.min_shard_worlds = max(1, min_shard_worlds)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.scenario = self.engine.scenario
        self._scenario_hash = scenario_fingerprint(self.scenario, self.engine.library)
        self.stats = ServiceStats()

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        point: Mapping[str, Any],
        *,
        worlds: Optional[Sequence[int]] = None,
        reuse: bool = True,
    ) -> PointEvaluation:
        """Evaluate one point: result cache, then the sharded engine cycle."""
        validated = self.scenario.sweep_space.validate_point(
            {
                k: v
                for k, v in point.items()
                if str(k).lstrip("@").lower() != self.scenario.axis
            }
        )
        chosen = (
            tuple(worlds)
            if worlds is not None
            else tuple(range(self.engine.config.n_worlds))
        )
        self.stats.points_evaluated += 1

        key = None
        if self.cache is not None and reuse:
            key = self._key_for(validated, chosen)
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return self._evaluation_from_cache(validated, chosen, cached.statistics)
            self.stats.cache_misses += 1

        evaluation = self.engine.evaluate_point(
            validated, worlds=chosen, reuse=reuse, sampler=self._sharded_sampler
        )
        if key is not None:
            self.cache.put(
                key,
                evaluation.statistics,
                meta={
                    "scenario": self._scenario_hash,
                    "scenario_name": self.scenario.name,
                    "point": {k: repr(v) for k, v in sorted(validated.items())},
                    "n_worlds": len(chosen),
                    "base_seed": self.engine.config.base_seed,
                },
            )
        return evaluation

    def mergeable_stats(self, evaluation: PointEvaluation) -> MergeableAxisStats:
        """Mergeable week-axis moments of an evaluation's VG sample matrices.

        The compact (``O(aliases x weeks)``) form of a point's results that
        the scheduler merges across points and shards — see
        :class:`repro.core.aggregator.MergeableAxisStats`.
        """
        if not evaluation.samples:
            raise ServeError(
                "evaluation carries no sample matrices (served from the "
                "result cache); mergeable stats need a computed evaluation"
            )
        return MergeableAxisStats.from_matrices(evaluation.samples)

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _key_for(self, validated: Mapping[str, Any], worlds: Sequence[int]) -> str:
        config = self.engine.config
        return result_key(
            self._scenario_hash,
            validated,
            worlds,
            n_worlds=len(worlds),
            base_seed=config.base_seed,
            fingerprint_seeds=config.fingerprint_seeds,
            correlation_tolerance=config.correlation_tolerance,
            min_mapped_fraction=config.min_mapped_fraction,
        )

    def _evaluation_from_cache(
        self,
        validated: dict[str, Any],
        worlds: tuple[int, ...],
        statistics,
    ) -> PointEvaluation:
        """A :class:`PointEvaluation` served entirely from the result cache.

        No sample matrices travel through the cache — ``samples`` is empty
        and every VG output reports a full ``exact`` reuse, tagged with the
        ``result_cache`` kind so observers can tell the layers apart.
        """
        reports = tuple(
            ReuseReport(
                vg_name=output.vg_name,
                args=output.model_arg_values(validated),
                source="exact",
                basis_args=output.model_arg_values(validated),
                mapped_fraction=1.0,
                components_total=self.engine.library.get(output.vg_name).n_components,
                components_recomputed=0,
                kind_counts={
                    "result_cache": self.engine.library.get(
                        output.vg_name
                    ).n_components
                },
            )
            for output in self.scenario.vg_outputs
        )
        return PointEvaluation(
            point=validated,
            statistics=statistics,
            samples={},
            reuse_reports=reports,
            timings=StageTimings(),
            n_worlds=len(worlds),
        )

    def _sharded_sampler(self, output: VGOutput, batch: InstanceBatch) -> np.ndarray:
        """The engine's fresh-sampling stage, fanned out across shards."""
        worlds = batch.worlds
        n_shards = min(self.n_shards, max(1, len(worlds) // self.min_shard_worlds))
        shards = plan_shards(worlds, n_shards)
        self.stats.sampled_worlds += len(worlds)
        if len(shards) == 1:
            # Nothing to fan out — sample directly on the coordinator
            # rather than round-tripping one shard through the pool.
            self.stats.shard_tasks += 1
            return self.engine.sample_fresh(output.alias, batch.point_dict, worlds)

        started = time.perf_counter()
        point_items = tuple(sorted(batch.point_dict.items()))
        futures = []
        for shard in shards:
            if self.spec is not None and self.executor.kind == "process":
                future = self.executor.submit(
                    sample_shard_task,
                    self.spec,
                    output.alias,
                    point_items,
                    shard.worlds,
                )
            else:
                future = self.executor.submit(
                    self.engine.sample_fresh,
                    output.alias,
                    batch.point_dict,
                    shard.worlds,
                )
            futures.append(future)
        parts = [np.asarray(future.result(), dtype=float) for future in futures]
        self.stats.shard_tasks += len(shards)
        self.stats.parallel_seconds += time.perf_counter() - started
        return np.vstack(parts)

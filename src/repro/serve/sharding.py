"""World sharding: partitioning the fixed world-seed sequence.

The paper's premise (§2) is that a *fixed* seed sequence gives a
deterministic relationship between runs: world ``w`` of any evaluation is
always simulated from ``world_seed(base_seed, w)``, no matter which process
evaluates it or in what order. That makes the world axis embarrassingly
parallel — a contiguous slice of worlds evaluated elsewhere produces
exactly the rows the sequential engine would have produced, so shards can
be merged back (in shard order) into a bit-identical sample matrix.

The round protocol leans on the same invariant along the other axis: a
round's fresh increment is itself a contiguous world slice (one shard
generation — :func:`round_slices`), so the dispatcher and its resilience
ladder apply to every round exactly as they do to a one-shot evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ServeError


@dataclass(frozen=True)
class WorldShard:
    """One contiguous slice of the world sequence."""

    index: int
    worlds: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.worlds)


def plan_shards(worlds: Sequence[int], n_shards: int) -> tuple[WorldShard, ...]:
    """Split ``worlds`` into up to ``n_shards`` contiguous, ordered shards.

    Shards are near-equal in size (sizes differ by at most one, larger
    shards first) and never empty; fewer shards are returned when there are
    fewer worlds than requested. Concatenating the shards' worlds in shard
    order reproduces ``worlds`` exactly — the invariant the merge step
    relies on.
    """
    if n_shards < 1:
        raise ServeError(f"n_shards must be >= 1, got {n_shards}")
    ordered = tuple(worlds)
    if not ordered:
        raise ServeError("plan_shards needs at least one world")
    count = min(n_shards, len(ordered))
    base, extra = divmod(len(ordered), count)
    shards: list[WorldShard] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(WorldShard(index=index, worlds=ordered[start : start + size]))
        start += size
    return tuple(shards)


def round_slices(boundaries: Sequence[int]) -> tuple[WorldShard, ...]:
    """The per-round fresh increments of a round ladder, as world shards.

    ``boundaries`` are the strictly increasing world-prefix sizes of a
    :class:`~repro.core.rounds.RoundPlan` (round ``r`` evaluates worlds
    ``[0, boundaries[r])``); the returned shard ``r`` is the contiguous
    increment ``[boundaries[r-1], boundaries[r])`` that round ``r`` must
    fresh-sample — one shard generation per round. Concatenating the
    shards' worlds in order reproduces ``range(boundaries[-1])``, the same
    merge invariant as :func:`plan_shards`.
    """
    if not boundaries:
        raise ServeError("round_slices needs at least one boundary")
    shards: list[WorldShard] = []
    previous = 0
    for index, boundary in enumerate(boundaries):
        stop = int(boundary)
        if stop <= previous:
            raise ServeError(
                f"round boundaries must be strictly increasing and positive, "
                f"got {tuple(boundaries)!r}"
            )
        shards.append(WorldShard(index=index, worlds=tuple(range(previous, stop))))
        previous = stop
    return tuple(shards)

"""Shard executors: where shard sampling tasks actually run.

Two interchangeable backends behind one ``submit`` interface:

* :class:`ProcessExecutor` — a ``concurrent.futures.ProcessPoolExecutor``.
  Workers are long-lived, so each worker process builds its engine once
  (from an :class:`~repro.serve.worker.EngineSpec`) and amortizes it over
  every shard task it receives. The pool is *recyclable*: a crashed or
  hung worker is healed by :meth:`ProcessExecutor.recycle`, which tears
  down the pool (terminating stuck processes) and builds a fresh one in
  place — the executor object's identity, and everyone holding it, stays
  stable.
* :class:`InlineExecutor` — runs tasks synchronously in the calling
  process. The fallback for tests, debugging, single-core machines, and
  engines that cannot be described by a spec (closures are fine here
  because nothing is pickled).

Both return future-like objects exposing ``result(timeout=None)``, and
both shut down in bounded time: ``shutdown`` never waits forever on a
stuck worker, so ``EvaluationService.close()`` (and the ``ProphetClient``
context exit above it) always returns.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Optional

from repro.errors import ServeError


def _run_hooks(hooks: list) -> None:
    """Run cleanup hooks; a failing hook never masks the teardown itself."""
    for hook in hooks:
        try:
            hook()
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass


class InlineFuture:
    """Already-resolved future: the task ran synchronously at submit.

    ``timeout`` is accepted for interface symmetry with real futures and
    ignored — the result is, by construction, already here.
    """

    __slots__ = ("_value", "_error")

    def __init__(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor:
    """Synchronous in-process executor (tests, debug, 1-core fallback)."""

    kind = "inline"

    def __init__(self) -> None:
        self.workers = 1
        self.tasks_run = 0
        self._teardown_hooks: list[Callable[[], None]] = []

    def submit(self, fn: Callable[..., Any], *args: Any) -> InlineFuture:
        self.tasks_run += 1
        try:
            return InlineFuture(fn(*args))
        except Exception as error:  # surfaced on .result(), like a real future
            return InlineFuture(error=error)

    def add_teardown_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` on shutdown (transport arenas release segments here)."""
        self._teardown_hooks.append(hook)

    def shutdown(self, timeout: float = 5.0) -> None:  # interface symmetry
        _run_hooks(self._teardown_hooks)


class ProcessExecutor:
    """Process-pool executor with long-lived workers and a recyclable pool.

    ``start_method`` defaults to ``fork`` where available (workers inherit
    the imported package instantly) and ``spawn`` elsewhere; either way the
    submitted task must be a module-level function with picklable arguments
    — see :mod:`repro.serve.worker`.
    """

    kind = "process"

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None) -> None:
        cpus = os.cpu_count() or 1
        self.workers = max(1, workers if workers is not None else cpus)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._mp_context = multiprocessing.get_context(start_method)
        self._pool: Optional[ProcessPoolExecutor] = self._new_pool()
        self.tasks_run = 0
        #: How many times the pool was rebuilt (self-healing observability).
        self.rebuilds = 0
        #: Cleanup hooks (see :meth:`add_recycle_hook` / :meth:`add_teardown_hook`):
        #: the shm transport registers its lease sweeper / arena release so
        #: pool churn can never strand shared-memory segments.
        self._recycle_hooks: list[Callable[[], None]] = []
        self._teardown_hooks: list[Callable[[], None]] = []

    def add_recycle_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every :meth:`recycle` (pool self-heal)."""
        self._recycle_hooks.append(hook)

    def add_teardown_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after :meth:`shutdown` tears the pool down."""
        self._teardown_hooks.append(hook)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context
        )

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        if self._pool is None:
            raise ServeError("executor is shut down; cannot submit new tasks")
        self.tasks_run += 1
        return self._pool.submit(fn, *args)

    def recycle(self, timeout: float = 1.0) -> None:
        """Heal the pool: tear it down (killing stuck workers), rebuild.

        The replacement pool lives behind the same executor object, so a
        service (and its dispatcher) holding this executor keeps working
        without re-plumbing. In-flight tasks of the old pool are lost —
        callers recycle only after collecting (or writing off) the round's
        futures, and shard purity makes re-submission bit-identical.
        """
        self._teardown(self._pool, timeout)
        self._pool = self._new_pool()
        self.rebuilds += 1
        _run_hooks(self._recycle_hooks)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Bounded shutdown: never blocks forever on a stuck worker.

        Cancels queued tasks, gives live workers ``timeout`` seconds total
        to drain, then terminates (and, as a last resort, kills) whatever
        is still running. Idempotent; ``submit`` after shutdown raises.
        """
        pool, self._pool = self._pool, None
        self._teardown(pool, timeout)
        _run_hooks(self._teardown_hooks)

    @staticmethod
    def _teardown(pool: Optional[ProcessPoolExecutor], timeout: float) -> None:
        if pool is None:
            return
        # Snapshot the worker processes before shutdown clears its books.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        # Never wait=True here: a worker hung inside a task would block the
        # join forever. cancel_futures drops everything still queued.
        pool.shutdown(wait=False, cancel_futures=True)
        # repro-lint: disable=DET001 -- teardown deadline for killing hung
        # workers; runs after all results are in, never affects them.
        deadline = time.monotonic() + max(0.0, timeout)
        for process in processes:
            # repro-lint: disable=DET001 -- teardown deadline (see above).
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
        for process in processes:
            if process.is_alive():
                process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def create_executor(kind: str = "auto", workers: Optional[int] = None):
    """Build an executor: ``"process"``, ``"inline"``, or ``"auto"``.

    ``auto`` picks a process pool when more than one worker is requested
    (or available) and the inline executor otherwise.
    """
    if kind == "inline":
        return InlineExecutor()
    if kind == "process":
        return ProcessExecutor(workers)
    if kind == "auto":
        effective = workers if workers is not None else (os.cpu_count() or 1)
        if effective <= 1:
            return InlineExecutor()
        return ProcessExecutor(effective)
    raise ServeError(f"unknown executor kind {kind!r} (use process/inline/auto)")

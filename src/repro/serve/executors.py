"""Shard executors: where shard sampling tasks actually run.

Two interchangeable backends behind one ``submit`` interface:

* :class:`ProcessExecutor` — a ``concurrent.futures.ProcessPoolExecutor``.
  Workers are long-lived, so each worker process builds its engine once
  (from an :class:`~repro.serve.worker.EngineSpec`) and amortizes it over
  every shard task it receives.
* :class:`InlineExecutor` — runs tasks synchronously in the calling
  process. The fallback for tests, debugging, single-core machines, and
  engines that cannot be described by a spec (closures are fine here
  because nothing is pickled).

Both return future-like objects exposing ``result()``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Optional

from repro.errors import ServeError


class InlineFuture:
    """Already-resolved future: the task ran synchronously at submit."""

    __slots__ = ("_value", "_error")

    def __init__(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor:
    """Synchronous in-process executor (tests, debug, 1-core fallback)."""

    kind = "inline"

    def __init__(self) -> None:
        self.workers = 1
        self.tasks_run = 0

    def submit(self, fn: Callable[..., Any], *args: Any) -> InlineFuture:
        self.tasks_run += 1
        try:
            return InlineFuture(fn(*args))
        except Exception as error:  # surfaced on .result(), like a real future
            return InlineFuture(error=error)

    def shutdown(self) -> None:  # interface symmetry
        pass


class ProcessExecutor:
    """Process-pool executor with long-lived workers.

    ``start_method`` defaults to ``fork`` where available (workers inherit
    the imported package instantly) and ``spawn`` elsewhere; either way the
    submitted task must be a module-level function with picklable arguments
    — see :mod:`repro.serve.worker`.
    """

    kind = "process"

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None) -> None:
        cpus = os.cpu_count() or 1
        self.workers = max(1, workers if workers is not None else cpus)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(start_method),
        )
        self.tasks_run = 0

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        self.tasks_run += 1
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def create_executor(kind: str = "auto", workers: Optional[int] = None):
    """Build an executor: ``"process"``, ``"inline"``, or ``"auto"``.

    ``auto`` picks a process pool when more than one worker is requested
    (or available) and the inline executor otherwise.
    """
    if kind == "inline":
        return InlineExecutor()
    if kind == "process":
        return ProcessExecutor(workers)
    if kind == "auto":
        effective = workers if workers is not None else (os.cpu_count() or 1)
        if effective <= 1:
            return InlineExecutor()
        return ProcessExecutor(effective)
    raise ServeError(f"unknown executor kind {kind!r} (use process/inline/auto)")

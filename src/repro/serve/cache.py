"""Cross-run result cache: persistent point statistics on disk.

The third reuse layer, above the engine's exact basis hits and fingerprint
mapping: finished :class:`AxisStatistics` keyed by *what was asked* — a
content hash of the scenario (structure + VG library signature), the
canonicalized parameter point, the world set, and the seed configuration.
A second session, or a restarted CLI run, that asks the same question gets
the stored answer instantly without touching the engine at all.

Storage format: one ``<key>.npz`` (statistics arrays) plus one
``<key>.json`` (human-readable metadata) per entry. The npz is written
through a fixed-timestamp, no-compression zip writer so identical
statistics always serialize to byte-identical payloads — which is what
lets tests (and paranoid operators) verify a hit byte-for-byte.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.aggregator import AxisStatistics, SeriesStats
from repro.core.scenario import Scenario, VGOutput
from repro.vg.library import VGLibrary

#: Epoch timestamp for zip entries: determinism over honesty about mtimes.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid currently running?

    Signal 0 probes without touching the target; ``EPERM`` means it exists
    but belongs to someone else — still alive for our purposes.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def scenario_fingerprint(scenario: Scenario, library: VGLibrary) -> str:
    """Content hash of a scenario + VG library pairing.

    Structural, not textual: the parameter domains, output definitions, and
    library function signatures — the things that determine what a point
    evaluation returns. (``source_sql`` alone would be wrong: builders like
    ``build_risk_vs_cost(purchase_step=...)`` vary the space while keeping
    the Figure 2 text.)
    """
    outputs: list[dict[str, Any]] = []
    for output in scenario.outputs:
        if isinstance(output, VGOutput):
            outputs.append(
                {
                    "alias": output.alias.lower(),
                    "vg": output.vg_name.lower(),
                    "index": output.index_expr.render(),
                    "args": [arg.render() for arg in output.model_args],
                }
            )
        else:
            outputs.append(
                {
                    "alias": output.alias.lower(),
                    "expression": output.expression.render(),
                }
            )
    functions = []
    for name in sorted(library.names):
        function = library.get(name)
        functions.append(
            {
                "name": function.name.lower(),
                "type": type(function).__name__,
                "n_components": function.n_components,
                "arg_names": list(function.arg_names),
            }
        )
    payload = json.dumps(
        {
            "axis": scenario.axis,
            "parameters": [
                {"name": p.name.lower(), "values": [repr(v) for v in p.values]}
                for p in scenario.space
            ],
            "outputs": outputs,
            "library": functions,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def result_key(
    scenario_hash: str,
    point: Mapping[str, Any],
    worlds: Sequence[int],
    *,
    n_worlds: int,
    base_seed: int,
    fingerprint_seeds: int,
    correlation_tolerance: float = 1e-6,
    min_mapped_fraction: float = 0.05,
) -> str:
    """Cache key of one point evaluation request.

    Every knob that can change the stored statistics participates — the
    fingerprint-mapping tolerances included, because cached results are
    computed with reuse on and mapped samples are approximate within those
    tolerances.
    """
    payload = json.dumps(
        {
            "scenario": scenario_hash,
            "point": sorted((str(k).lower(), repr(v)) for k, v in point.items()),
            "worlds": hashlib.sha256(
                np.asarray(sorted(worlds), dtype=np.int64).tobytes()
            ).hexdigest(),
            "n_worlds": n_worlds,
            "base_seed": base_seed,
            "fingerprint_seeds": fingerprint_seeds,
            "correlation_tolerance": correlation_tolerance,
            "min_mapped_fraction": min_mapped_fraction,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _deterministic_npz(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize arrays as an npz with fixed timestamps (byte-reproducible)."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            payload = io.BytesIO()
            np.save(payload, np.ascontiguousarray(arrays[name]))
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            archive.writestr(info, payload.getvalue())
    return buffer.getvalue()


@dataclass(frozen=True)
class CachedResult:
    """One cache hit: the statistics plus the raw payload they came from."""

    key: str
    statistics: AxisStatistics
    payload: bytes
    meta: dict[str, Any]


class ResultCache:
    """Disk-backed map from result keys to finished axis statistics."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Stale ``.tmp.<pid>`` files removed at init (crash-recovery
        #: observability; see :meth:`_sweep_stale_tmp`).
        self.tmp_swept = self._sweep_stale_tmp()

    # -- paths -------------------------------------------------------------

    def _npz_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.npz")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._npz_path(key))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".npz"))

    # -- read --------------------------------------------------------------

    def get(self, key: str) -> Optional[CachedResult]:
        """Load one entry; ``None`` on a miss or an unreadable payload."""
        path = self._npz_path(key)
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
            arrays = np.load(io.BytesIO(payload))
            aliases = [str(a) for a in arrays["aliases"]]
            axis_values = tuple(int(v) for v in arrays["axis_values"])
            # np.ascontiguousarray promotes 0-d to 1-d at write time.
            n_worlds = int(np.asarray(arrays["n_worlds"]).flat[0])
            series: dict[str, SeriesStats] = {}
            for alias in aliases:
                series[alias] = SeriesStats(
                    alias=alias,
                    expectation=np.asarray(arrays[f"e_{alias}"], dtype=float),
                    stddev=np.asarray(arrays[f"sd_{alias}"], dtype=float),
                    n_worlds=n_worlds,
                )
            statistics = AxisStatistics(
                axis_values=axis_values, series=series, n_worlds=n_worlds
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # A corrupt or truncated entry is a miss, never an error: the
            # cache is an optimization layer and must fail open.
            self.misses += 1
            return None
        meta: dict[str, Any] = {}
        try:
            with open(self._meta_path(key)) as handle:
                meta = json.load(handle)
        except Exception:
            pass
        self.hits += 1
        return CachedResult(key=key, statistics=statistics, payload=payload, meta=meta)

    # -- write -------------------------------------------------------------

    def put(
        self,
        key: str,
        statistics: AxisStatistics,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> bytes:
        """Store one entry (atomic rename); returns the payload bytes.

        Re-putting an existing key is a no-op returning the stored bytes,
        so a key's payload never changes once written.
        """
        path = self._npz_path(key)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                return handle.read()
        aliases = sorted(statistics.aliases())
        arrays: dict[str, np.ndarray] = {
            "aliases": np.asarray(aliases),
            "axis_values": np.asarray(statistics.axis_values, dtype=np.int64),
            "n_worlds": np.asarray(statistics.n_worlds, dtype=np.int64),
        }
        for alias in aliases:
            arrays[f"e_{alias}"] = np.asarray(
                statistics.expectation(alias), dtype=np.float64
            )
            arrays[f"sd_{alias}"] = np.asarray(
                statistics.stddev(alias), dtype=np.float64
            )
        payload = _deterministic_npz(arrays)
        self._atomic_write(path, payload)
        if meta is not None:
            self._atomic_write(
                self._meta_path(key),
                json.dumps(dict(meta), sort_keys=True, indent=2).encode(),
            )
        self.stores += 1
        return payload

    def _sweep_stale_tmp(self) -> int:
        """Remove tmp files orphaned by a writer that crashed mid-write.

        ``_atomic_write`` stages every payload as ``<path>.tmp.<pid>``; a
        process killed between staging and ``os.replace`` leaves the tmp
        file behind forever (its key is content-addressed, so no later
        write reuses the exact name for long). Swept at init: a tmp file
        whose writer pid is no longer alive — or is *this* process, which
        cannot have a write in flight during construction — is garbage.
        Tmp files of live foreign writers are left alone.
        """
        swept = 0
        for name in os.listdir(self.directory):
            if ".tmp." not in name:
                continue
            pid_text = name.rsplit(".tmp.", 1)[1]
            try:
                pid = int(pid_text)
            except ValueError:
                pid = None  # malformed suffix: nobody owns it
            if pid is not None and pid != os.getpid() and _pid_alive(pid):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
                swept += 1
            except OSError:
                pass  # raced with the owner finishing; either way it's gone
        return swept

    def _atomic_write(self, path: str, payload: bytes) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            # fsync before the rename: os.replace is atomic in the
            # namespace but says nothing about the *data* — a crash after
            # the rename could otherwise leave the final name pointing at
            # a truncated payload.
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        try:
            # Persist the rename itself (the directory entry).
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass  # not supported on this platform/filesystem; best effort

    # -- observability -----------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith((".npz", ".json")):
                os.unlink(os.path.join(self.directory, name))
        self.hits = self.misses = self.stores = 0

"""Fault tolerance for the shard fan-out: deadlines, retries, self-healing.

The serving plane's availability contract is that a faulty substrate may
cost *time*, never *answers*: shards are pure functions of
``(spec, point, world slice, snapshot)``, so any shard that failed — a
crashed worker, a missed deadline, a mangled payload — can be re-run
anywhere, including inline on the coordinator, and produce the bit-identical
rows. :class:`ShardDispatcher` turns that purity into a recovery ladder,
applied round by round to a fan-out:

1. **deadline** — each shard result is awaited with a per-shard timeout
   (``shard_timeout``), so a hung worker costs one deadline, not the
   session;
2. **bounded retries** — shards that failed transiently (timeout, crash,
   broken pool, injected fault, garbage payload) are re-submitted for up
   to ``shard_retries`` further rounds, with deterministic exponential
   backoff between rounds;
3. **pool self-healing** — a round that saw a timeout or a
   ``BrokenProcessPool`` recycles the process pool (terminating stuck
   workers) before the next round, so one bad worker cannot poison every
   subsequent submission;
4. **inline rescue** — when retries are exhausted, surviving failures are
   re-run synchronously on the coordinator (``inline_rescue``), degrading
   the fan-out to sequential speed for those shards but never to a wrong
   or missing answer.

Permanent errors — anything not in the :class:`~repro.errors.
TransientServeError` branch, a broken pool, or a timeout — are *not*
retried: a deterministic bug recurs identically, so the dispatcher
collects every outstanding future (no leaked in-flight work) and
re-raises immediately.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import (
    RetryExhaustedError,
    ScenarioError,
    ShardPayloadError,
    ShardTimeoutError,
    TransientServeError,
)
from repro.obs.trace import NULL_TRACER
from repro.serve.faults import FaultInjector
from repro.serve.worker import ShardSample


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the fault-tolerance ladder, in one frozen section.

    The defaults are active — bounded retries, pool self-healing, and
    inline rescue all apply out of the box — but change nothing on a
    healthy substrate: with no deadline configured and no fault occurring,
    the dispatcher is a plain submit-and-collect loop.

    ``shard_timeout``
        Seconds to wait for one shard result before declaring it hung
        (``None`` = wait forever, the pre-resilience behavior).
    ``shard_retries``
        How many additional submission rounds a transiently-failed shard
        gets before the rescue ladder's last rung.
    ``retry_backoff``
        Base seconds slept between rounds, doubling each round —
        deterministic (no jitter), so chaos runs are reproducible.
    ``inline_rescue``
        Re-run still-failing shards synchronously on the coordinator after
        retries are exhausted. Bit-identical by shard purity; turning it
        off surfaces :class:`~repro.errors.RetryExhaustedError` instead.
    ``job_retries``
        How many times the :class:`~repro.serve.scheduler.Scheduler`
        re-runs a whole job that failed with a *transient* error
        (permanent failures surface as ``FAILED`` immediately).
    """

    shard_timeout: Optional[float] = None
    shard_retries: int = 2
    retry_backoff: float = 0.05
    inline_rescue: bool = True
    job_retries: int = 1

    def __post_init__(self) -> None:
        _require(
            self.shard_timeout is None or self.shard_timeout > 0,
            f"shard_timeout must be > 0 or None, got {self.shard_timeout}",
        )
        _require(
            self.shard_retries >= 0,
            f"shard_retries must be >= 0, got {self.shard_retries}",
        )
        _require(
            self.retry_backoff >= 0,
            f"retry_backoff must be >= 0, got {self.retry_backoff}",
        )
        _require(
            self.job_retries >= 0,
            f"job_retries must be >= 0, got {self.job_retries}",
        )


@dataclass
class ShardCall:
    """One shard's unit of work, as the dispatcher sees it.

    ``fn(*args)`` is what goes to the executor (module-level and picklable
    for process pools); ``rescue()`` re-runs the same pure computation
    synchronously on the coordinator — the caller guarantees both produce
    the bit-identical :class:`~repro.serve.worker.ShardSample`.
    ``expected_rows`` lets the dispatcher validate payload shape without
    knowing anything else about the computation.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...]
    rescue: Callable[[], ShardSample]
    expected_rows: int
    expected_components: Optional[int] = None
    #: Transport hook: maps the raw executor payload into the usable one
    #: (the shm transport resolves a returned segment descriptor into a
    #: sample-matrix view). Applied before payload validation; a resolve
    #: failure is a transient substrate fault (the ladder re-runs the
    #: shard, ultimately inline where no resolution is needed).
    resolve: Optional[Callable[[Any], Any]] = None
    #: Assigned by the dispatcher: the global fault-plan sequence number.
    seq: int = field(default=-1, repr=False)


class ShardDispatcher:
    """Dispatch shard fan-outs with deadlines, retries, healing, rescue.

    One per :class:`~repro.serve.service.EvaluationService`; mutates the
    service's :class:`~repro.serve.service.ServiceStats` counters
    (``shard_retries`` / ``shard_timeouts`` / ``pool_rebuilds`` /
    ``inline_rescues``) so every recovery is observable. The executor is
    held by reference and recycled *in place* (see
    :meth:`~repro.serve.executors.ProcessExecutor.recycle`), so the service
    and the dispatcher always agree on the live pool.
    """

    def __init__(
        self,
        executor: Any,
        stats: Any,
        config: ResilienceConfig,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.executor = executor
        self.stats = stats
        self.config = config
        self.injector = injector
        #: Observability: the service's ``set_tracer`` replaces this no-op.
        #: Worker-side shard wall-clock (shipped back in each ShardSample)
        #: becomes worker-track "shard" events with attempt attribution.
        self.tracer = NULL_TRACER
        #: Transport cleanup hook, run after every pool heal: the service
        #: points this at its segment arena's TTL sweeper so a healed pool
        #: can never strand expired shared-memory leases.
        self.transport_sweep: Optional[Callable[[], Any]] = None

    # -- public entrypoint --------------------------------------------------

    def dispatch(self, calls: Sequence[ShardCall]) -> list[ShardSample]:
        """Run every call to completion; results in call order.

        Raises the first *permanent* error encountered (after collecting
        every outstanding future of the round, so no in-flight work is
        leaked); transient failures walk the retry → heal → rescue ladder.
        """
        for call in calls:
            call.seq = self.injector.assign_seq() if self.injector else -1
        results: list[Optional[ShardSample]] = [None] * len(calls)
        reasons: dict[int, BaseException] = {}
        pending = list(range(len(calls)))
        attempt = 0
        while True:
            failed, permanent = self._run_round(
                calls, pending, attempt, results, reasons
            )
            if permanent is not None:
                raise permanent
            if not failed:
                return results  # type: ignore[return-value]
            if attempt < self.config.shard_retries:
                self.stats.shard_retries += len(failed)
                self._backoff(attempt)
                pending = failed
                attempt += 1
                continue
            return self._rescue(calls, failed, results, reasons)

    # -- one submission round ----------------------------------------------

    def _run_round(
        self,
        calls: Sequence[ShardCall],
        pending: Sequence[int],
        attempt: int,
        results: list[Optional[ShardSample]],
        reasons: dict[int, BaseException],
    ) -> tuple[list[int], Optional[BaseException]]:
        """Submit ``pending`` calls, collect *every* future, classify.

        Returns (transiently-failed indices, first permanent error). All
        futures are always collected before returning — the error path may
        not leave work in flight (a leaked future would keep a pool slot
        busy and its result would arrive into nothing).
        """
        futures = [(index, self._submit(calls[index], attempt)) for index in pending]
        failed: list[int] = []
        permanent: Optional[BaseException] = None
        needs_heal = False
        for index, future in futures:
            try:
                payload = future.result(timeout=self.config.shard_timeout)
            except FuturesTimeoutError:
                self.stats.shard_timeouts += 1
                reasons[index] = ShardTimeoutError(
                    f"shard missed its {self.config.shard_timeout}s deadline"
                )
                failed.append(index)
                needs_heal = True  # the worker may be hung in its slot
                continue
            except BrokenProcessPool as error:
                reasons[index] = error
                failed.append(index)
                needs_heal = True
                continue
            except TransientServeError as error:
                reasons[index] = error
                failed.append(index)
                continue
            except Exception as error:  # permanent: collect the rest, then raise
                if permanent is None:
                    permanent = error
                continue
            if calls[index].resolve is not None:
                try:
                    payload = calls[index].resolve(payload)
                except Exception as error:
                    # A descriptor that cannot be resolved (unknown or
                    # reclaimed segment) is substrate damage, transient by
                    # the same purity argument as a mangled payload.
                    reasons[index] = ShardPayloadError(
                        f"shard payload failed to resolve: {error}"
                    )
                    failed.append(index)
                    continue
            problem = self._payload_problem(calls[index], payload)
            if problem is not None:
                # Coordinator-side classification: a mangled payload is a
                # substrate fault (bit rot, a confused worker), transient
                # by the same purity argument as a crash.
                reasons[index] = ShardPayloadError(problem)
                failed.append(index)
                continue
            results[index] = payload
            self._record_shard(index, attempt, payload, rescued=False)
        if needs_heal:
            self._heal_pool()
        return failed, permanent

    def _submit(self, call: ShardCall, attempt: int) -> Any:
        fn, args = call.fn, call.args
        if self.injector is not None:
            fn, args = self.injector.wrap(
                call.seq, attempt, self.executor.kind == "process", fn, args
            )
        try:
            return self.executor.submit(fn, *args)
        except BrokenProcessPool:
            # A pool broken by an earlier dispatch (e.g. rescue ran without
            # a final heal) refuses new work at submit time; heal once and
            # resubmit.
            self._heal_pool()
            return self.executor.submit(fn, *args)

    # -- the recovery ladder -------------------------------------------------

    def _heal_pool(self) -> None:
        if self.executor.kind != "process":
            return
        self.executor.recycle()
        self.stats.pool_rebuilds += 1
        if self.transport_sweep is not None:
            self.transport_sweep()

    def _backoff(self, attempt: int) -> None:
        if self.config.retry_backoff > 0:
            time.sleep(self.config.retry_backoff * (2**attempt))

    def _rescue(
        self,
        calls: Sequence[ShardCall],
        failed: Sequence[int],
        results: list[Optional[ShardSample]],
        reasons: dict[int, BaseException],
    ) -> list[ShardSample]:
        if not self.config.inline_rescue:
            last = reasons.get(failed[-1])
            raise RetryExhaustedError(
                f"{len(failed)} shard(s) still failing after "
                f"{self.config.shard_retries + 1} attempt(s) and inline "
                f"rescue is disabled (last failure: {last})"
            )
        for index in failed:
            # The rescue closure re-runs the pure shard computation on the
            # coordinator, outside the fault injector and the executor —
            # bit-identical by construction, sequential by necessity.
            payload = calls[index].rescue()
            results[index] = payload
            self.stats.inline_rescues += 1
            self._record_shard(
                index, self.config.shard_retries, payload, rescued=True
            )
        return results  # type: ignore[return-value]

    def _record_shard(
        self, index: int, attempt: int, payload: ShardSample, *, rescued: bool
    ) -> None:
        """Turn a shard's worker-side timing into a worker-track event."""
        if not self.tracer.enabled:
            return
        attrs: dict[str, Any] = {
            "shard": index,
            "attempt": attempt,
            "source": payload.source,
            "rescued": rescued,
        }
        for stage, seconds in payload.timing:
            attrs[f"{stage}_seconds"] = round(seconds, 6)
        self.tracer.event("shard", payload.elapsed_seconds, **attrs)

    # -- payload validation --------------------------------------------------

    @staticmethod
    def _payload_problem(call: ShardCall, payload: Any) -> Optional[str]:
        """Why this payload is unusable, or ``None`` if it is sound."""
        if not isinstance(payload, ShardSample):
            return f"expected a ShardSample, got {type(payload).__name__}"
        samples = np.asarray(payload.samples)
        if samples.ndim != 2 or samples.shape[0] != call.expected_rows:
            return (
                f"shard payload has shape {samples.shape}, expected "
                f"({call.expected_rows}, n_components)"
            )
        if (
            call.expected_components is not None
            and samples.shape[1] != call.expected_components
        ):
            return (
                f"shard payload has {samples.shape[1]} components, "
                f"expected {call.expected_components}"
            )
        if not np.issubdtype(samples.dtype, np.number):
            return f"shard payload dtype {samples.dtype} is not numeric"
        return None


#: Re-exported for callers that want to raise it themselves.
__all__ = [
    "ResilienceConfig",
    "ShardCall",
    "ShardDispatcher",
    "ShardPayloadError",
    "ShardTimeoutError",
]

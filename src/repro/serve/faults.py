"""Deterministic fault injection for the serving plane.

The chaos harness behind the resilience tests and benchmarks: a
:class:`FaultPlan` names exactly which dispatched shard tasks fail and how
— crash the worker, hang it, raise a transient exception, or return a
garbage payload — and fires *deterministically*, keyed on the shard's
global sequence number and attempt count, never on wall-clock or shared
mutable state. That keying is what makes injection work under a real
``ProcessPoolExecutor``: the plan is a small frozen picklable value shipped
with every task, so a retried shard (attempt 1) dispatched to a different
worker process still sees the same verdict the plan gave it, with no
cross-process coordination.

Faults model the substrate, not the computation: shards are pure functions
of their inputs, so any injected fault the dispatcher survives must leave
the merged statistics bit-identical to the fault-free run — the property
the chaos suite pins.

:func:`run_with_fault` is the task wrapper the dispatcher submits; it is a
module-level function (picklable) that applies the plan's verdict and then
runs the real task. ``in_worker`` says whether a "crash" may genuinely
kill the process (`os._exit`) or must be simulated by raising
:class:`~repro.errors.WorkerCrashError` (inline executors run in the
coordinator process, which an ``os._exit`` would take down with them).
"""

from __future__ import annotations

import itertools
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ServeError, TransientServeError, WorkerCrashError

#: The injectable fault kinds.
FAULT_KINDS: tuple[str, ...] = ("crash", "hang", "raise", "garbage")

#: What a "garbage" fault returns instead of a ShardSample. A plain string
#: — picklable, and guaranteed to fail the dispatcher's payload validation.
GARBAGE_PAYLOAD = "<<garbage shard payload>>"


class FaultInjected(TransientServeError):
    """The transient exception a ``"raise"`` fault throws inside a task."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: which shard, what kind, for how many attempts.

    ``attempts`` is how many consecutive attempts of the shard fail before
    the fault clears: 1 (the default) models a one-off transient glitch —
    the first retry succeeds; a value above the dispatcher's retry budget
    models a stuck fault that forces inline rescue (or, with rescue off,
    retry exhaustion).
    """

    shard: int
    kind: str
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ServeError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.shard < 0:
            raise ServeError(f"fault shard index must be >= 0, got {self.shard}")
        if self.attempts < 1:
            raise ServeError(f"fault attempts must be >= 1, got {self.attempts}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected faults.

    ``faults`` are matched against the global shard sequence number the
    :class:`FaultInjector` assigns (0 for the first shard task the service
    ever dispatches, 1 for the second, ...); the first matching spec wins.
    ``hang_seconds`` is how long a ``"hang"`` fault sleeps — point it above
    the dispatcher's deadline to exercise timeout expiry, or near zero to
    make a hang a harmless delay.
    """

    faults: tuple[FaultSpec, ...] = ()
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.hang_seconds < 0:
            raise ServeError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )

    def fault_for(self, shard_seq: int, attempt: int) -> Optional[str]:
        """The fault kind to inject for this (shard, attempt), if any."""
        for spec in self.faults:
            if spec.shard == shard_seq and attempt < spec.attempts:
                return spec.kind
        return None

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        rate: float = 0.25,
        kinds: tuple[str, ...] = ("raise", "garbage"),
        attempts: int = 1,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """A reproducible random plan over the first ``shards`` sequence
        numbers: each is faulted with probability ``rate``, with a kind
        drawn from ``kinds``. Same seed, same plan — always."""
        rng = random.Random(seed)
        faults = tuple(
            FaultSpec(shard=index, kind=rng.choice(list(kinds)), attempts=attempts)
            for index in range(shards)
            if rng.random() < rate
        )
        return cls(faults=faults, hang_seconds=hang_seconds)


def run_with_fault(
    plan: FaultPlan,
    shard_seq: int,
    attempt: int,
    in_worker: bool,
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """Apply the plan's verdict for one task, then run the real task.

    Module-level and picklable, so it travels through a process pool as the
    submitted function with the plan in its arguments. A ``"hang"`` sleeps
    and then *continues normally* — exactly what a stalled-but-alive worker
    does — so without a deadline it is only a delay, and with one the
    coordinator times out while the worker is still burning its slot.
    """
    kind = plan.fault_for(shard_seq, attempt)
    if kind == "crash":
        if in_worker:
            os._exit(13)
        raise WorkerCrashError(
            f"injected worker crash at shard {shard_seq} (attempt {attempt})"
        )
    if kind == "hang":
        time.sleep(plan.hang_seconds)
    elif kind == "raise":
        raise FaultInjected(
            f"injected transient fault at shard {shard_seq} (attempt {attempt})"
        )
    elif kind == "garbage":
        return GARBAGE_PAYLOAD
    return fn(*args)


class FaultInjector:
    """Coordinator-side bookkeeping for one service's fault plan.

    Assigns every dispatched shard task its global sequence number (in
    submission order, which is deterministic: outputs in scenario order,
    shards in world order) and wraps submissions through
    :func:`run_with_fault`. ``injected`` counts planned injections by kind
    — observability for tests; it counts verdicts handed out, including
    ones a crashed pool never got to execute.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seq = itertools.count()
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def assign_seq(self) -> int:
        """The next global shard sequence number (one per logical shard;
        retries keep their shard's original number)."""
        return next(self._seq)

    def wrap(
        self,
        shard_seq: int,
        attempt: int,
        in_worker: bool,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> tuple[Callable[..., Any], tuple[Any, ...]]:
        """The (function, args) to actually submit for one shard attempt."""
        kind = self.plan.fault_for(shard_seq, attempt)
        if kind is not None:
            self.injected[kind] += 1
        return run_with_fault, (self.plan, shard_seq, attempt, in_worker, fn) + tuple(
            args
        )

#!/usr/bin/env python3
"""What-if variants and Markov shortcuts (paper §3.3 and §2).

Three studies beyond the headline scenario:

1. **Uncertain growth** — the demand curve scales with a growth multiplier;
   fingerprints detect *affine* maps across growth values, so all three
   growth scenarios cost barely more than one.
2. **Different initial capacity** — a pure shift what-if.
3. **Markov shortcut estimators** — the maintenance-window capacity chain is
   deterministic outside scheduled windows; estimators skip those regions.

    python examples/offline_optimization.py          # after: pip install -e .
    PYTHONPATH=src python examples/offline_optimization.py   # without installing
"""

from repro.api import ProphetClient
from repro.core.fingerprint import (
    FingerprintSpec,
    analyze_markov,
    simulate_with_shortcuts,
)
from repro.models import build_growth_scenario
from repro.models.capacity import MaintenanceWindowCapacityModel


def growth_what_if() -> None:
    print("=== What-if: uncertain user growth ===\n")
    scenario, library = build_growth_scenario(purchase_step=16)
    client = ProphetClient.open(scenario, library).with_sampling(n_worlds=40)
    optimizer = client.optimize()
    result = optimizer.run(reuse=True)

    print(f"points: {result.points_evaluated}, sources: {result.source_counts()}")
    demand = library.get("DemandModel")
    print(f"DemandModel invocations: {demand.invocations}, "
          f"component-samples: {demand.component_samples}")

    affine_mappings = [
        record for record in optimizer.engine.registry.mappings_for("DemandModel")
        if record.kind_counts.get("affine", 0) > 0
    ]
    print(f"affine demand mappings established: {len(affine_mappings)}")

    # Growth is an uncertainty scenario, not a decision: report the latest
    # feasible schedule separately under each growth assumption.
    print("\nlatest feasible purchase schedule per growth assumption:")
    for growth in scenario.space.parameter("growth").values:
        feasible = [
            record for record in result.feasible_records
            if record.point["growth"] == growth
        ]
        if not feasible:
            print(f"  growth={growth}: no feasible schedule")
            continue
        best = max(
            feasible,
            key=lambda r: (r.point["purchase1"], r.point["purchase2"]),
        )
        print(
            f"  growth={growth}: purchase1=week {best.point['purchase1']}, "
            f"purchase2=week {best.point['purchase2']} "
            f"(max P(overload)={best.constraint_value:.4f})"
        )


def markov_shortcuts() -> None:
    print("\n=== Markov shortcut estimators (paper §2) ===\n")
    model = MaintenanceWindowCapacityModel()
    spec = FingerprintSpec(n_seeds=8)
    analysis = analyze_markov(model, (0,), spec, tolerance=1e-9)

    print(f"chain length: {analysis.n_steps} weeks")
    print(f"predictable regions: {[(r.start, r.stop) for r in analysis.regions]}")
    print(f"skippable: {analysis.skippable_steps} steps "
          f"({analysis.skippable_fraction:.0%})")

    # Shortcut runs sample the same distribution (not the same bitstream),
    # so the comparison is on Monte Carlo expectations.
    import numpy as np

    n_mc = 300
    full = np.vstack([model.generate(seed, (0,)) for seed in range(n_mc)])
    shortcut = np.vstack(
        [simulate_with_shortcuts(model, seed, (0,), analysis)[0] for seed in range(n_mc)]
    )
    _, simulated = simulate_with_shortcuts(model, 0, (0,), analysis)
    expectation_gap = float(np.abs(full.mean(axis=0) - shortcut.mean(axis=0)).max())
    noise_floor = float((full.std(axis=0, ddof=1) / np.sqrt(n_mc)).max())
    print(f"\nshortcut runs simulate {simulated}/{model.n_components} steps each")
    print(f"max |E[capacity] gap| over weeks: {expectation_gap:.1f} cores "
          f"(Monte Carlo noise floor ~{1.96 * noise_floor:.1f})")


def main() -> None:
    growth_what_if()
    markov_shortcuts()


if __name__ == "__main__":
    main()

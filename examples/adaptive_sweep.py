#!/usr/bin/env python3
"""Adaptive anytime sampling: spend worlds only where the CI needs them.

Runs the same risk-vs-cost sweep twice — once with the fixed world budget,
once with ``with_adaptive(target_ci=...)`` — and compares the spend. With
adaptive sampling on, every point evaluates in growing world-prefix rounds
and *retires* the moment all of its 95% confidence half-widths are at or
below the target; the worlds it never spent go back into the pool for
points that still need them. Most points on this scenario resolve after
the first rounds, so the adaptive sweep finishes the grid on a fraction of
the fixed budget while answering to the same tolerance.

    python examples/adaptive_sweep.py          # after: pip install -e .
    PYTHONPATH=src python examples/adaptive_sweep.py   # without installing
"""

import sys

from repro.api import ProphetClient
from repro.models import build_risk_vs_cost

N_WORLDS = 120
TARGET_CI = 400.0  # absolute half-width, on this scenario's demand scale


def main() -> None:
    print("=== Adaptive sweep: CI-targeted world budgets ===\n")
    scenario, library = build_risk_vs_cost(purchase_step=16)
    total = scenario.space.grid_size(exclude=[scenario.axis])

    # Fixed budget: every point gets all N_WORLDS worlds, no questions asked.
    fixed = ProphetClient.open(scenario, library).with_sampling(
        n_worlds=N_WORLDS
    )
    with fixed:
        fixed.sweep().run()
        fixed_worlds = total * N_WORLDS
    print(f"fixed budget : {total} points x {N_WORLDS} worlds = "
          f"{fixed_worlds} worlds\n")

    # Adaptive: same grid, same per-point cap, but points retire as soon as
    # every series' CI half-width is at or below TARGET_CI.
    scenario2, library2 = build_risk_vs_cost(purchase_step=16)
    client = (
        ProphetClient.open(scenario2, library2)
        .with_sampling(n_worlds=N_WORLDS)
        .with_adaptive(target_ci=TARGET_CI)
    )
    with client:
        retired = 0
        for result in client.sweep():  # streaming: one line per point
            retired += bool(result.retired_early)
            flag = "retired" if result.retired_early else "full   "
            sys.stdout.write(
                f"\r[{result.index + 1:3d}/{total}] {flag} "
                f"worlds={result.worlds_spent:4d} rounds={result.rounds} "
                f"max_ci={result.max_ci:8.1f}"
            )
            sys.stdout.flush()
        print("\n")
        report = client.stats()
        scheduler = report.scheduler
        spent = scheduler["worlds_spent"]
        budgeted = scheduler["worlds_budgeted"]
        print(
            f"adaptive     : {retired}/{total} points retired early; "
            f"{spent} of {budgeted} budgeted worlds spent "
            f"({1 - spent / budgeted:.0%} saved at target_ci={TARGET_CI})"
        )
        print()
        print(report.render())


if __name__ == "__main__":
    main()

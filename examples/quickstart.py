#!/usr/bin/env python3
"""Quickstart: open the paper's Figure 2 scenario through the client API.

Runs the full Fuzzy Prophet cycle once (Figure 1) via
:class:`repro.api.ProphetClient`: the Guide picks the slider point, the
Query Generator emits pure SQL, the engine samples Monte Carlo worlds
through the VG table functions, the Storage Manager records basis
distributions, and the Result Aggregator produces the per-week statistics
that the online graph renders.

    python examples/quickstart.py          # after: pip install -e .
    PYTHONPATH=src python examples/quickstart.py   # without installing
"""

from repro.api import ProphetClient
from repro.models import FIGURE2_DSL
from repro.viz import render_chart


def main() -> None:
    print("=== Fuzzy Prophet quickstart ===\n")
    print("Scenario program (paper Figure 2):")
    print(FIGURE2_DSL)

    client = ProphetClient.open(
        FIGURE2_DSL, "demo", name="risk_vs_cost"
    ).with_sampling(n_worlds=120)
    session = client.interactive()

    print(f"parsed: {client.scenario}")
    print(f"VG-Functions: {client.library.names}")
    print(f"parameter grid (excluding axis): "
          f"{client.scenario.space.grid_size(exclude=[client.scenario.axis])} points\n")

    # Stage 1 (Guide): the user positions the sliders.
    session.set_sliders({"purchase1": 8, "purchase2": 24, "feature": 12})
    print(f"sliders: {session.sliders}")

    # Stages 2-4: evaluate and aggregate.
    view = session.refresh()
    print(
        f"first render: {view.elapsed_seconds * 1000:.0f} ms, "
        f"{view.vg_invocations} VG invocations, "
        f"{view.component_samples} component-samples\n"
    )

    print(render_chart(session.graph_series(view), title="per-week statistics"))

    # A second adjustment: fingerprints re-render only the changed weeks.
    session.set_slider("purchase1", 16)
    second = session.refresh()
    print(
        f"\nsecond render after moving @purchase1 8 -> 16: "
        f"{second.elapsed_seconds * 1000:.0f} ms, "
        f"{second.component_samples} component-samples, "
        f"re-rendered weeks: {list(second.refreshed_weeks)} "
        f"({second.refresh_fraction:.1%} of the graph)"
    )

    overload = second.statistics.expectation("overload")
    worst = max(range(len(overload)), key=lambda w: overload[w])
    print(
        f"\nworst week: {worst} with P(overload) = {overload[worst]:.3f}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Offline mode on the risk-vs-cost-of-ownership scenario (paper §3.3).

Sweeps the full (purchase1, purchase2, feature) grid, checks the OPTIMIZE
constraint ``MAX(EXPECT overload) < threshold`` at every point, and reports
the *latest* purchase dates that keep the year-round overload risk under the
threshold — exactly the question the demo answers. A live progress line
mirrors the demo's "live-updated view of the simulation's progress", and the
final mapping grid is the paper's Figure 4.

    python examples/risk_vs_cost.py          # after: pip install -e .
    PYTHONPATH=src python examples/risk_vs_cost.py   # without installing
"""

import sys

from repro.api import ProphetClient
from repro.core import RiskAnalyzer
from repro.models import build_risk_vs_cost
from repro.viz import mapping_grid, render_grid, render_sparkline


def main() -> None:
    print("=== Offline optimization: when to buy hardware? ===\n")
    scenario, library = build_risk_vs_cost(purchase_step=8, overload_threshold=0.05)
    client = ProphetClient.open(scenario, library).with_sampling(n_worlds=60)
    optimizer = client.optimize()

    total = scenario.space.grid_size(exclude=[scenario.axis])
    print(f"grid: {total} parameter points x 60 Monte Carlo worlds\n")

    progress_state = {"done": 0}

    def progress(record) -> None:
        progress_state["done"] += 1
        flag = "ok " if record.feasible else "bad"
        sys.stdout.write(
            f"\r[{progress_state['done']:4d}/{total}] {flag} "
            f"p1={record.point['purchase1']:2d} p2={record.point['purchase2']:2d} "
            f"f={record.point['feature']:2d} "
            f"max P(overload)={record.constraint_value:.3f} "
            f"({record.dominant_source})   "
        )
        sys.stdout.flush()

    result = optimizer.run(reuse=True, progress=progress)
    print("\n")

    print(f"sweep finished in {result.elapsed_seconds:.1f}s")
    print(f"points: {result.points_evaluated}, sources: {result.source_counts()}")
    print(f"VG component-samples simulated: {result.component_samples}\n")

    if result.best is None:
        print("no feasible purchase schedule under this threshold")
        return

    best = result.best
    print("latest feasible purchase schedule:")
    print(f"  purchase1 = week {best.point['purchase1']}")
    print(f"  purchase2 = week {best.point['purchase2']}")
    print(f"  feature   = week {best.point['feature']}")
    print(f"  max P(overload) over the year = {best.constraint_value:.4f}\n")

    overload = best.statistics.expectation("overload")
    print(f"P(overload) by week: {render_sparkline(overload)}\n")

    # Risk drill-down on the chosen schedule (beyond mean/stddev).
    analyzer = RiskAnalyzer(scenario)
    evaluation = client.evaluate(best.point)
    headroom_p05 = analyzer.quantiles(evaluation, "capacity", (0.05,))[0.05]
    demand_p95 = analyzer.quantiles(evaluation, "demand", (0.95,))[0.95]
    tightest = int((headroom_p05 - demand_p95).argmin())
    runs = analyzer.overload_run_lengths(evaluation)
    print("risk drill-down at the chosen schedule:")
    print(
        f"  tightest week: {tightest} "
        f"(5th-pct capacity {headroom_p05[tightest]:.0f} vs "
        f"95th-pct demand {demand_p95[tightest]:.0f})"
    )
    print(
        f"  longest consecutive overload stretch: "
        f"mean {runs.mean():.2f} weeks, worst world {runs.max():.0f} weeks\n"
    )

    grid = mapping_grid(
        result.records, scenario.space, "purchase1", "purchase2",
        fixed={"feature": best.point["feature"]},
    )
    print(
        render_grid(
            grid,
            title=f"Figure 4: fingerprint mappings, feature={best.point['feature']} slice",
        )
    )


if __name__ == "__main__":
    main()

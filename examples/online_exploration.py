#!/usr/bin/env python3
"""Online mode walkthrough (paper §3.2): sliders, incremental re-rendering,
progressive refinement, and proactive exploration.

Replays the demo script: a first render pays full Monte Carlo cost; every
later slider adjustment is served mostly from fingerprint-mapped bases, and
the session reports exactly which weeks of the graph were re-rendered.

    python examples/online_exploration.py          # after: pip install -e .
    PYTHONPATH=src python examples/online_exploration.py   # without installing
"""

from repro.api import ProphetClient
from repro.models import build_risk_vs_cost
from repro.viz import render_sparkline


def describe(label: str, view) -> None:
    refreshed = list(view.refreshed_weeks)
    print(
        f"{label}: {view.elapsed_seconds * 1000:6.0f} ms | "
        f"{view.component_samples:6d} component-samples | "
        f"re-rendered {view.refresh_fraction:5.1%} of weeks"
        + (f" -> {refreshed}" if 0 < len(refreshed) <= 12 else "")
    )
    overload = view.statistics.expectation("overload")
    print(f"    P(overload) {render_sparkline(overload)}")


def main() -> None:
    print("=== Online exploration (the demo GUI, scripted) ===\n")
    scenario, library = build_risk_vs_cost()
    client = ProphetClient.open(scenario, library).with_sampling(n_worlds=150)
    session = client.interactive()

    print("-> initial sliders: purchase1=20, purchase2=40, feature=12")
    session.set_sliders({"purchase1": 20, "purchase2": 40, "feature": 12})

    print("\nprogressive refinement (first guess fast, then sharpened):")
    views = session.refresh_progressive()
    for index, view in enumerate(views):
        delta = session.tracker.history[index]
        print(
            f"  pass {index + 1}: {view.n_worlds:3d} worlds, "
            f"max relative change vs previous pass = "
            + ("inf (first pass)" if delta == float("inf") else f"{delta:.4f}")
        )

    print("\n-> guest moves @purchase1 to 16 (second adjustment)")
    session.set_slider("purchase1", 16)
    describe("refresh", session.refresh())

    print("\n-> guest moves @purchase2 to 32")
    session.set_slider("purchase2", 32)
    describe("refresh", session.refresh())

    print("\n-> guest moves the feature release to week 36")
    print("   (the demand slope changes, yet the tail remaps via shift maps)")
    session.set_slider("feature", 36)
    describe("refresh", session.refresh())

    print("\n-> session idles; Prophet proactively explores neighbor values")
    explored = session.explore_proactively()
    print(f"   proactively explored {explored} neighboring parameter points")

    print("\n-> guest moves @purchase1 to 12 (a pre-explored neighbor)")
    session.set_slider("purchase1", 12)
    describe("refresh", session.refresh())

    print("\ninteraction log:")
    for index, view in enumerate(session.log.views):
        point = ", ".join(f"{k}={v}" for k, v in sorted(view.point.items()))
        print(
            f"  {index + 1:2d}. [{point}] "
            f"{view.elapsed_seconds * 1000:6.0f} ms, "
            f"refresh {view.refresh_fraction:5.1%}"
        )


if __name__ == "__main__":
    main()
